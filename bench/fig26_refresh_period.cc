// Figure 26: refresh period (execution time per computing-job invocation,
// i.e. how stale the UDF's intermediate state can get) for Dynamic SQL++
// enrichment under batch sizes 1X/4X/16X, five use cases, 6 nodes.
//
// Expected shape: refresh periods grow with batch size; Fuzzy Suspects and
// Nearby Monuments sit far above the three simple lookup/aggregate cases.
#include "harness.h"

using namespace idea;
using namespace idea::bench;

int main(int argc, char** argv) {
  MetricsOut metrics_out(argc, argv);
  SimBench::Options options;
  options.use_cases = EvalUseCases();
  options.base_sizes = EvalBenchSizes();
  options.tweets = 3000;
  SimBench bench(options);
  BenchJsonWriter json("fig26");

  PrintHeader("Figure 26: refresh period per batch size (Dynamic SQL++, 6 nodes)",
              "seconds per computing-job invocation");
  PrintRow({"use case", "1X (42)", "4X (168)", "16X (672)"}, 22);

  for (auto id : EvalUseCases()) {
    const auto& uc = workload::GetUseCase(id);
    std::vector<std::string> row = {uc.name};
    for (size_t mult : {1, 4, 16}) {
      feed::SimConfig config;
      config.nodes = 6;
      config.batch_size = kBatch1X * mult;
      config.costs = BenchCosts();
      config.udf = uc.function_name;
      feed::SimReport r = bench.Run(config);
      row.push_back(Fmt(r.refresh_period_us / 1e6, "%.3f"));
      json.Add(uc.name + std::string("/") + std::to_string(mult) + "X", config, r);
    }
    PrintRow(row, 22);
  }

  // Ablation: incremental intermediate-state maintenance off (every
  // computing-job invocation pays the full snapshot/hash rebuild), 1X
  // batches. The gap against the <case>/1X series above is the refresh-period
  // saving of the delta/no-op paths.
  PrintHeader("Ablation: full rebuild per invocation (delta refresh off, 1X)",
              "seconds per computing-job invocation");
  for (auto id : EvalUseCases()) {
    const auto& uc = workload::GetUseCase(id);
    feed::SimConfig config;
    config.nodes = 6;
    config.batch_size = kBatch1X;
    config.costs = BenchCosts();
    config.udf = uc.function_name;
    config.delta_refresh = false;
    feed::SimReport r = bench.Run(config);
    PrintRow({uc.name, Fmt(r.refresh_period_us / 1e6, "%.3f")}, 22);
    json.Add(uc.name + std::string("/1X-full-rebuild"), config, r);
  }
  return 0;
}
