// Micro-benchmarks: ADM value plumbing — JSON parse/print, binary serde,
// frame encode/decode, hashing/compare (google-benchmark).
#include <benchmark/benchmark.h>

#include "adm/json.h"
#include "adm/serde.h"
#include "runtime/frame.h"
#include "workload/tweets.h"

namespace {

using idea::adm::Value;

std::string SampleTweetJson() {
  idea::workload::TweetGenerator gen({.seed = 1, .country_domain = 100});
  return gen.NextJson();
}

Value SampleTweet() {
  idea::workload::TweetGenerator gen({.seed = 1, .country_domain = 100});
  return gen.NextValue();
}

void BM_JsonParseTweet(benchmark::State& state) {
  std::string json = SampleTweetJson();
  for (auto _ : state) {
    auto v = idea::adm::ParseJson(json);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_JsonParseTweet);

void BM_JsonPrintTweet(benchmark::State& state) {
  Value v = SampleTweet();
  for (auto _ : state) {
    std::string s = idea::adm::PrintJson(v);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_JsonPrintTweet);

void BM_SerializeTweet(benchmark::State& state) {
  Value v = SampleTweet();
  for (auto _ : state) {
    auto bytes = idea::adm::SerializeToBytes(v);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_SerializeTweet);

void BM_DeserializeTweet(benchmark::State& state) {
  auto bytes = idea::adm::SerializeToBytes(SampleTweet());
  for (auto _ : state) {
    auto v = idea::adm::DeserializeFromBytes(bytes);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_DeserializeTweet);

void BM_FrameRoundTrip(benchmark::State& state) {
  std::vector<Value> records;
  idea::workload::TweetGenerator gen({.seed = 2, .country_domain = 100});
  for (int64_t i = 0; i < state.range(0); ++i) records.push_back(gen.NextValue());
  for (auto _ : state) {
    idea::runtime::Frame f = idea::runtime::Frame::FromRecords(records);
    std::vector<Value> out;
    benchmark::DoNotOptimize(f.Decode(&out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(32)->Arg(420);

void BM_ValueHash(benchmark::State& state) {
  Value v = SampleTweet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Value::Hash(v));
  }
}
BENCHMARK(BM_ValueHash);

void BM_ValueCompare(benchmark::State& state) {
  Value a = SampleTweet();
  Value b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Value::Compare(a, b));
  }
}
BENCHMARK(BM_ValueCompare);

}  // namespace

BENCHMARK_MAIN();
