// Delta-aware probe-cache micro-benchmark and ctest gate.
//
// Drives the two index nested-loop paths (B-tree equality, R-tree spatial)
// through an enrichment plan under a zipf(1.0)-skewed probe-key workload —
// the regime the memo is built for: a handful of hot keys absorb most probes.
// For each path the same probe sequence runs with the cache off and on; the
// gate requires (a) bit-identical enrichment results and (b) at least a 2x
// per-probe speedup with the cache. Emits BENCH_probe_cache.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "adm/json.h"
#include "adm/serde.h"
#include "common/rng.h"
#include "common/virtual_clock.h"
#include "sqlpp/enrichment_plan.h"
#include "sqlpp/parser.h"
#include "storage/catalog.h"

namespace {

using namespace idea;
using adm::Value;

constexpr size_t kKeys = 512;        // probe-key domain
constexpr size_t kRowsPerKey = 24;   // reference rows behind each key
constexpr int kProbes = 4000;
constexpr int kReps = 3;

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
    std::exit(2);
  }
}

/// Zipf(s=1.0) sampler over [0, n): P(k) ~ 1/(k+1). Inverse-CDF over a
/// precomputed cumulative table (the repo has no zipf generator; this one is
/// deterministic via common/rng.h).
class Zipf {
 public:
  explicit Zipf(size_t n, uint64_t seed) : rng_(seed), cdf_(n) {
    double sum = 0;
    for (size_t k = 0; k < n; ++k) {
      sum += 1.0 / static_cast<double>(k + 1);
      cdf_[k] = sum;
    }
    for (size_t k = 0; k < n; ++k) cdf_[k] /= sum;
  }

  size_t Next() {
    double u = rng_.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

class EmptyResolver : public sqlpp::FunctionResolver {
 public:
  const sqlpp::SqlppFunctionDef* FindSqlppFunction(const std::string&) const override {
    return nullptr;
  }
  sqlpp::NativeFunctionHandle* FindNativeFunction(const std::string&) const override {
    return nullptr;
  }
};

std::shared_ptr<const sqlpp::SqlppFunctionDef> ParseFn(const std::string& ddl) {
  auto s = sqlpp::ParseStatement(ddl);
  Check(s.status(), "parse function");
  auto def = std::make_shared<sqlpp::SqlppFunctionDef>();
  def->name = s->create_function.name;
  def->params = s->create_function.params;
  def->body = std::shared_ptr<const sqlpp::SelectStatement>(
      std::move(s->create_function.body));
  return def;
}

void ApplyDdl(storage::Catalog* catalog, const std::string& script) {
  auto stmts = sqlpp::ParseScript(script);
  Check(stmts.status(), "parse ddl");
  for (const auto& stmt : *stmts) {
    if (stmt.kind == sqlpp::StatementKind::kCreateType) {
      std::vector<adm::FieldSpec> fields;
      for (const auto& f : stmt.create_type.fields) {
        fields.push_back({f.name, *adm::FieldTypeFromName(f.type_name), f.optional});
      }
      (void)catalog->CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
    } else if (stmt.kind == sqlpp::StatementKind::kCreateDataset) {
      (void)catalog->CreateDataset(stmt.create_dataset.name,
                                   stmt.create_dataset.type_name,
                                   stmt.create_dataset.primary_key);
    } else if (stmt.kind == sqlpp::StatementKind::kCreateIndex) {
      auto ds = catalog->FindDataset(stmt.create_index.dataset);
      (void)ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                            stmt.create_index.index_type);
    }
  }
}

/// One benchmark section: probe `probes` through fresh cache-off / cache-on
/// plans, assert bit-identical outputs, return {live_us, cached_us}.
struct SectionResult {
  double live_us = 0;
  double cached_us = 0;
  uint64_t hits = 0;
  bool identical = true;
};

SectionResult RunSection(const std::shared_ptr<const sqlpp::SqlppFunctionDef>& def,
                         storage::CatalogAccessor* accessor,
                         const std::vector<Value>& probes) {
  EmptyResolver resolver;
  sqlpp::PlanConfig off;
  off.enable_probe_cache = false;
  auto live = sqlpp::EnrichmentPlan::Compile(def, accessor, &resolver, off);
  Check(live.status(), "compile live plan");
  auto cached = sqlpp::EnrichmentPlan::Compile(def, accessor, &resolver);
  Check(cached.status(), "compile cached plan");
  Check((*live)->Initialize(), "initialize live");
  Check((*cached)->Initialize(), "initialize cached");

  SectionResult res;
  // Correctness pass: every probe bit-identical between the two plans.
  for (const Value& p : probes) {
    auto a = (*live)->EnrichOne(p);
    auto b = (*cached)->EnrichOne(p);
    Check(a.status(), "live probe");
    Check(b.status(), "cached probe");
    if (adm::SerializeToBytes(*a) != adm::SerializeToBytes(*b)) {
      res.identical = false;
      std::fprintf(stderr, "MISMATCH\nlive:   %s\ncached: %s\n",
                   a->ToString().c_str(), b->ToString().c_str());
      break;
    }
  }

  // Timing passes (best-of-N thread CPU; caches stay warm across reps, which
  // is exactly the steady state the memo targets).
  double live_best = 1e30, cached_best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    ThreadCpuTimer timer;
    timer.Start();
    for (const Value& p : probes) Check((*live)->EnrichOne(p).status(), "live probe");
    live_best = std::min(live_best, timer.ElapsedMicros());
    timer.Start();
    for (const Value& p : probes) Check((*cached)->EnrichOne(p).status(), "cached probe");
    cached_best = std::min(cached_best, timer.ElapsedMicros());
  }
  res.live_us = live_best;
  res.cached_us = cached_best;
  res.hits = (*cached)->stats().probe_cache_hits;
  return res;
}

}  // namespace

int main() {
  std::FILE* json = std::fopen("BENCH_probe_cache.json", "w");
  int failures = 0;
  Rng rng(11);

  auto report = [&](const char* name, const SectionResult& r) {
    double per_probe_live = r.live_us / kProbes;
    double per_probe_cached = r.cached_us / kProbes;
    double speedup = per_probe_live / per_probe_cached;
    std::printf("%-18s %12.2fus %12.2fus %8.2fx  hits=%llu\n", name, per_probe_live,
                per_probe_cached, speedup, static_cast<unsigned long long>(r.hits));
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"series\":%s,\"probes\":%d,\"zipf_s\":1.0,"
                   "\"per_probe_live_us\":%.3f,\"per_probe_cached_us\":%.3f,"
                   "\"speedup\":%.3f,\"cache_hits\":%llu,\"identical\":%s}\n",
                   adm::JsonQuote(std::string("probe_cache/") + name).c_str(), kProbes,
                   per_probe_live, per_probe_cached, speedup,
                   static_cast<unsigned long long>(r.hits),
                   r.identical ? "true" : "false");
    }
    if (!r.identical) {
      std::fprintf(stderr, "FAIL %s: cached results not bit-identical\n", name);
      ++failures;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr, "FAIL %s: per-probe speedup %.2fx < 2x\n", name, speedup);
      ++failures;
    }
  };

  std::printf("%-18s %14s %14s %9s\n", "path", "live/probe", "cached/probe", "speedup");

  {
    // B-tree equality nested loop.
    storage::Catalog catalog;
    storage::CatalogAccessor accessor(&catalog, false);
    ApplyDdl(&catalog, R"(
CREATE TYPE PcRefType AS OPEN { rid: int, k: int, payload: string };
CREATE DATASET PcRef(PcRefType) PRIMARY KEY rid;
CREATE INDEX pcRefK ON PcRef(k);
)");
    auto ds = catalog.FindDataset("PcRef");
    int rid = 0;
    for (size_t k = 0; k < kKeys; ++k) {
      for (size_t j = 0; j < kRowsPerKey; ++j) {
        adm::Fields f;
        f.emplace_back("rid", Value::MakeInt(rid++));
        f.emplace_back("k", Value::MakeInt(static_cast<int64_t>(k)));
        f.emplace_back("payload", Value::MakeString(rng.NextAlpha(96)));
        Check(ds->Upsert(Value::MakeObject(std::move(f))), "load ref row");
      }
    }
    auto def = ParseFn(R"(
CREATE FUNCTION pcProbe(t) {
  LET n = (SELECT count(r.rid) FROM PcRef r WHERE r.k = t.k)[0]
  SELECT t.*, n
};
)");
    Zipf zipf(kKeys, 99);
    std::vector<Value> probes;
    for (int i = 0; i < kProbes; ++i) {
      adm::Fields f;
      f.emplace_back("id", Value::MakeInt(i));
      f.emplace_back("k", Value::MakeInt(static_cast<int64_t>(zipf.Next())));
      probes.push_back(Value::MakeObject(std::move(f)));
    }
    report("btree-eq", RunSection(def, &accessor, probes));
  }

  {
    // R-tree spatial nested loop: zipf over a fixed set of hot locations.
    storage::Catalog catalog;
    storage::CatalogAccessor accessor(&catalog, false);
    ApplyDdl(&catalog, R"(
CREATE TYPE PcMonType AS OPEN { mid: int, loc: point, name: string };
CREATE DATASET PcMonuments(PcMonType) PRIMARY KEY mid;
CREATE INDEX pcMonLoc ON PcMonuments(loc) TYPE RTREE;
)");
    // Hot sites with clusters of heavy monuments around them: each live probe
    // pays the R-tree descent plus a deep copy of every candidate record,
    // while a memo hit hands back pointers. The payload size is what the
    // cache saves; the residual spatial filter costs both paths the same.
    constexpr size_t kSites = 128;
    constexpr int kPerSite = 4;
    std::vector<adm::Point> sites;
    for (size_t k = 0; k < kSites; ++k) {
      sites.push_back({rng.NextDouble() * 120 - 60, rng.NextDouble() * 120 - 60});
    }
    auto ds = catalog.FindDataset("PcMonuments");
    int mid = 0;
    for (const adm::Point& s : sites) {
      for (int j = 0; j < kPerSite; ++j) {
        adm::Fields f;
        f.emplace_back("mid", Value::MakeInt(mid++));
        f.emplace_back("loc", Value::MakePoint({s.x + rng.NextDouble() * 0.6 - 0.3,
                                                s.y + rng.NextDouble() * 0.6 - 0.3}));
        f.emplace_back("name", Value::MakeString(rng.NextAlpha(64)));
        // Wide records: a live probe deep-copies every field of every
        // candidate; the residual filter only ever reads `loc`.
        for (int p = 0; p < 32; ++p) {
          f.emplace_back("p" + std::to_string(p), Value::MakeString(rng.NextAlpha(64)));
        }
        Check(ds->Upsert(Value::MakeObject(std::move(f))), "load monument");
      }
    }
    for (int m = 0; m < 4000; ++m) {
      adm::Fields f;
      f.emplace_back("mid", Value::MakeInt(mid++));
      f.emplace_back("loc", Value::MakePoint({rng.NextDouble() * 120 - 60,
                                              rng.NextDouble() * 120 - 60}));
      f.emplace_back("name", Value::MakeString(rng.NextAlpha(160)));
      Check(ds->Upsert(Value::MakeObject(std::move(f))), "load monument");
    }
    auto def = ParseFn(R"(
CREATE FUNCTION pcNearby(t) {
  LET nearby = (SELECT VALUE m.mid
                FROM PcMonuments m
                WHERE spatial_intersect(
                        m.loc,
                        create_circle(create_point(t.latitude, t.longitude), 0.5)))
  SELECT t.*, nearby
};
)");
    // Probe locations drawn zipf-skewed from the hot-site list.
    Zipf zipf(kSites, 101);
    std::vector<Value> probes;
    for (int i = 0; i < kProbes; ++i) {
      const adm::Point& s = sites[zipf.Next()];
      adm::Fields f;
      f.emplace_back("id", Value::MakeInt(i));
      f.emplace_back("latitude", Value::MakeDouble(s.x));
      f.emplace_back("longitude", Value::MakeDouble(s.y));
      probes.push_back(Value::MakeObject(std::move(f)));
    }
    report("rtree-spatial", RunSection(def, &accessor, probes));
  }

  if (json != nullptr) {
    std::fclose(json);
    std::printf("\nwrote BENCH_probe_cache.json\n");
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d probe_cache gate failure(s)\n", failures);
    return 1;
  }
  std::printf("probe_cache gate OK: bit-identical and >=2x per-probe on both paths\n");
  return 0;
}
