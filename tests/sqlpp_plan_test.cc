#include <gtest/gtest.h>

#include "adm/json.h"
#include "sqlpp/enrichment_plan.h"
#include "sqlpp/parser.h"
#include "storage/catalog.h"
#include "workload/reference_data.h"
#include "workload/tweets.h"
#include "workload/usecases.h"

namespace idea::sqlpp {
namespace {

using adm::Value;

class EmptyResolver : public FunctionResolver {
 public:
  const SqlppFunctionDef* FindSqlppFunction(const std::string&) const override {
    return nullptr;
  }
  NativeFunctionHandle* FindNativeFunction(const std::string&) const override {
    return nullptr;
  }
};

std::shared_ptr<const SqlppFunctionDef> ParseFn(const std::string& ddl) {
  auto s = ParseStatement(ddl);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  auto def = std::make_shared<SqlppFunctionDef>();
  def->name = s->create_function.name;
  def->params = s->create_function.params;
  def->body = std::shared_ptr<const SelectStatement>(std::move(s->create_function.body));
  return def;
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : accessor_(&catalog_, /*cache=*/false) {}

  void SetupUseCase(const workload::UseCaseSpec& uc) {
    auto stmts = ParseScript(uc.ddl);
    ASSERT_TRUE(stmts.ok());
    for (const auto& stmt : *stmts) {
      if (stmt.kind == StatementKind::kCreateType) {
        std::vector<adm::FieldSpec> fields;
        for (const auto& f : stmt.create_type.fields) {
          auto ft = adm::FieldTypeFromName(f.type_name);
          ASSERT_TRUE(ft.ok());
          fields.push_back({f.name, *ft, f.optional});
        }
        (void)catalog_.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
      } else if (stmt.kind == StatementKind::kCreateDataset) {
        ASSERT_TRUE(catalog_
                        .CreateDataset(stmt.create_dataset.name,
                                       stmt.create_dataset.type_name,
                                       stmt.create_dataset.primary_key)
                        .ok());
      } else if (stmt.kind == StatementKind::kCreateIndex) {
        auto ds = catalog_.FindDataset(stmt.create_index.dataset);
        ASSERT_NE(ds, nullptr);
        ASSERT_TRUE(ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                                    stmt.create_index.index_type)
                        .ok());
      }
    }
    workload::RefSizes sizes = workload::SimulatorScaleSizes().Scaled(0.2);
    ASSERT_TRUE(workload::LoadUseCaseData(&catalog_, uc, sizes, 200, 1).ok());
  }

  storage::Catalog catalog_;
  storage::CatalogAccessor accessor_;
  EmptyResolver resolver_;
};

TEST_F(PlanTest, AnalyzerClassifiesStatefulness) {
  auto stateless = ParseFn(
      "CREATE FUNCTION f(t) { LET x = CASE t.a = 1 WHEN true THEN 1 ELSE 0 END "
      "SELECT t.*, x };");
  FunctionAnalysis a = AnalyzeFunctionBody(*stateless->body, stateless->params);
  EXPECT_FALSE(a.stateful);
  EXPECT_TRUE(a.referenced_datasets.empty());

  auto stateful = ParseFn(workload::GetUseCase(workload::UseCaseId::kSafetyRating)
                              .function_ddl);
  a = AnalyzeFunctionBody(*stateful->body, stateful->params);
  EXPECT_TRUE(a.stateful);
  EXPECT_EQ(a.referenced_datasets.count("SafetyRatings"), 1u);
}

TEST_F(PlanTest, AnalyzerSeesNestedFunctionCalls) {
  auto def = ParseFn(workload::GetUseCase(workload::UseCaseId::kFuzzySuspects)
                         .function_ddl);
  FunctionAnalysis a = AnalyzeFunctionBody(*def->body, def->params);
  EXPECT_EQ(a.called_functions.count("testlib#removeSpecial"), 1u);
  EXPECT_EQ(a.called_functions.count("edit_distance"), 1u);
}

TEST_F(PlanTest, SafetyRatingGetsHashBuildProbe) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->choices().size(), 1u);
  EXPECT_EQ((*plan)->choices()[0].kind, AccessPathKind::kHashBuildProbe);
  EXPECT_EQ((*plan)->choices()[0].dataset, "SafetyRatings");
  EXPECT_EQ((*plan)->choices()[0].ref_field, "country_code");
}

TEST_F(PlanTest, NearbyMonumentsGetsRtreeIndexNestedLoop) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kNearbyMonuments);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->choices().size(), 1u);
  EXPECT_EQ((*plan)->choices()[0].kind, AccessPathKind::kIndexNestedLoopSpatial);
}

TEST_F(PlanTest, SkipIndexHintForcesScan) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kNearbyMonuments);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(
      ParseFn(workload::NaiveNearbyMonumentsFunctionDdl()), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->choices().size(), 1u);
  EXPECT_EQ((*plan)->choices()[0].kind, AccessPathKind::kScan);
}

TEST_F(PlanTest, FuzzySuspectsFallsBackToScan) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kFuzzySuspects);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->choices().size(), 1u);
  EXPECT_EQ((*plan)->choices()[0].kind, AccessPathKind::kScan);
}

TEST_F(PlanTest, TweetContextReordersAndPlansAllPaths) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kTweetContext);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Six FROM items across three subqueries; the district tables get spatial
  // index probes, AverageIncomes an equality path, Facilities/Persons
  // spatial probes (after join reordering put districts first).
  ASSERT_EQ((*plan)->choices().size(), 6u);
  size_t spatial = 0, eq = 0, scan = 0;
  for (const auto& c : (*plan)->choices()) {
    switch (c.kind) {
      case AccessPathKind::kIndexNestedLoopSpatial:
        ++spatial;
        break;
      case AccessPathKind::kHashBuildProbe:
      case AccessPathKind::kIndexNestedLoopEq:
        ++eq;
        break;
      default:
        ++scan;
    }
  }
  EXPECT_EQ(spatial, 5u) << (*plan)->Explain();
  EXPECT_EQ(eq, 1u) << (*plan)->Explain();
  EXPECT_EQ(scan, 0u) << (*plan)->Explain();
}

TEST_F(PlanTest, EnrichmentMatchesNaivePlanAcrossUseCases) {
  // Property: for every use case, the optimized plan and a forced-scan plan
  // produce identical enrichment results.
  for (auto id : {workload::UseCaseId::kSafetyRating, workload::UseCaseId::kNearbyMonuments,
                  workload::UseCaseId::kWorrisomeTweets}) {
    const auto& uc = workload::GetUseCase(id);
    storage::Catalog catalog;
    storage::CatalogAccessor accessor(&catalog, false);
    {
      // Local setup against this catalog.
      auto stmts = ParseScript(uc.ddl);
      ASSERT_TRUE(stmts.ok());
      for (const auto& stmt : *stmts) {
        if (stmt.kind == StatementKind::kCreateType) {
          std::vector<adm::FieldSpec> fields;
          for (const auto& f : stmt.create_type.fields) {
            fields.push_back({f.name, *adm::FieldTypeFromName(f.type_name), f.optional});
          }
          (void)catalog.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
        } else if (stmt.kind == StatementKind::kCreateDataset) {
          ASSERT_TRUE(catalog
                          .CreateDataset(stmt.create_dataset.name,
                                         stmt.create_dataset.type_name,
                                         stmt.create_dataset.primary_key)
                          .ok());
        } else if (stmt.kind == StatementKind::kCreateIndex) {
          auto ds = catalog.FindDataset(stmt.create_index.dataset);
          ASSERT_TRUE(ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                                      stmt.create_index.index_type)
                          .ok());
        }
      }
      workload::RefSizes sizes = workload::SimulatorScaleSizes().Scaled(0.1);
      ASSERT_TRUE(workload::LoadUseCaseData(&catalog, uc, sizes, 100, 3).ok());
    }
    EmptyResolver resolver;
    auto def = ParseFn(uc.function_ddl);
    auto fast = EnrichmentPlan::Compile(def, &accessor, &resolver);
    ASSERT_TRUE(fast.ok());
    PlanConfig naive_config;
    naive_config.prefer_index = false;  // hash still allowed; compare vs full scan
    // Build a fully naive def by hinting every FROM item via config:
    // simplest: a second plan with prefer_index=false exercises hash/scan.
    auto slow = EnrichmentPlan::Compile(def, &accessor, &resolver, naive_config);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE((*fast)->Initialize().ok());
    ASSERT_TRUE((*slow)->Initialize().ok());

    workload::TweetGenerator gen({.seed = 77, .country_domain = 100});
    for (int i = 0; i < 40; ++i) {
      Value tweet = gen.NextValue();
      // Coerce created_at for the Worrisome Tweets datetime comparison.
      adm::Datatype tweet_type(
          "T", {{"created_at", adm::FieldType::kDateTime, false}});
      ASSERT_TRUE(tweet_type.ValidateAndCoerce(&tweet).ok());
      auto a = (*fast)->EnrichOne(tweet);
      auto b = (*slow)->EnrichOne(tweet);
      ASSERT_TRUE(a.ok()) << uc.name << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << uc.name << ": " << b.status().ToString();
      EXPECT_EQ(*a, *b) << uc.name << "\nfast: " << a->ToString()
                        << "\nslow: " << b->ToString();
    }
  }
}

TEST_F(PlanTest, RefreshSeesUpdatesOnlyAfterInitialize) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE((*plan)->Initialize().ok());

  Value tweet = adm::ParseJson(R"({"id": 1, "text": "x", "country": "C00000"})").value();
  auto before = (*plan)->EnrichOne(tweet);
  ASSERT_TRUE(before.ok());
  std::string old_rating =
      before->GetField("safety_rating")->AsArray()[0].AsString();

  // Update the referenced record (the paper's UPSERT refresh scenario).
  auto ds = catalog_.FindDataset("SafetyRatings");
  ASSERT_TRUE(ds->Upsert(adm::ParseJson(
                             R"({"country_code": "C00000", "safety_rating": "CHANGED"})")
                             .value())
                  .ok());

  // Same invocation (no re-init): still the stale intermediate state.
  auto stale = (*plan)->EnrichOne(tweet);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->GetField("safety_rating")->AsArray()[0].AsString(), old_rating);

  // Next computing job re-initializes: update becomes visible.
  ASSERT_TRUE((*plan)->Initialize().ok());
  auto fresh = (*plan)->EnrichOne(tweet);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->GetField("safety_rating")->AsArray()[0].AsString(), "CHANGED");
  EXPECT_EQ((*plan)->stats().initializations, 2u);
}

TEST_F(PlanTest, IndexProbeSeesLiveUpdatesMidJob) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kNearbyMonuments);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE((*plan)->Initialize().ok());

  Value tweet = adm::ParseJson(
                    R"({"id": 1, "text": "x", "latitude": 45.0, "longitude": 45.0})")
                    .value();
  auto before = (*plan)->EnrichOne(tweet);
  ASSERT_TRUE(before.ok());
  size_t n_before = before->GetField("nearby_monuments")->AsArray().size();

  // Drop a monument exactly at the tweet location *without* re-initializing:
  // the live R-tree probe must see it (paper §7.3's index-join behaviour).
  auto ds = catalog_.FindDataset("monumentList");
  Value monument = adm::ParseJson(R"({"monument_id": "LIVE1"})").value();
  monument.SetField("monument_location", Value::MakePoint({45.0, 45.0}));
  ASSERT_TRUE(ds->Upsert(monument).ok());

  auto after = (*plan)->EnrichOne(tweet);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->GetField("nearby_monuments")->AsArray().size(), n_before + 1);
}

TEST_F(PlanTest, ForkSharesNothingMutable) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  auto fork = (*plan)->Fork();
  ASSERT_NE(fork, nullptr);
  ASSERT_TRUE(fork->Initialize().ok());
  Value tweet = adm::ParseJson(R"({"id": 1, "country": "C00001", "text": ""})").value();
  EXPECT_TRUE(fork->EnrichOne(tweet).ok());
  // Original plan is independent (still uninitialized -> EnrichOne fails).
  EXPECT_FALSE((*plan)->EnrichOne(tweet).ok());
}

TEST_F(PlanTest, EnrichBeforeInitializeFails) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  Value tweet = adm::ParseJson(R"({"id": 1})").value();
  EXPECT_FALSE((*plan)->EnrichOne(tweet).ok());
}

}  // namespace
}  // namespace idea::sqlpp
