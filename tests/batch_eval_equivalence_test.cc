// Batch evaluation vs the per-record path: EnrichBatch (batch arena, pooled
// scratch, streaming-aggregate fast path) must be bit-identical to a fresh
// plan driven record-at-a-time — across the full §7.2 and §7.4.2 UDF suites.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "adm/datatype.h"
#include "adm/serde.h"
#include "feed/udf.h"
#include "sqlpp/enrichment_plan.h"
#include "sqlpp/parser.h"
#include "storage/catalog.h"
#include "workload/native_udfs.h"
#include "workload/reference_data.h"
#include "workload/tweets.h"
#include "workload/usecases.h"

namespace idea::sqlpp {
namespace {

using adm::Value;

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  BatchEquivalenceTest() : accessor_(&catalog_, /*cache=*/false) {
    std::string dir = "/tmp/idea_batch_eq_resources";
    (void)::system(("mkdir -p " + dir).c_str());
    sizes_ = workload::SimulatorScaleSizes().Scaled(0.1);
    ASSERT_OK(workload::WriteNativeResources(dir, sizes_, kCountryDomain, 7));
    ASSERT_OK(workload::RegisterNativeUdfs(&udfs_, dir));
  }

  static void ASSERT_OK(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }

  void SetupUseCase(const workload::UseCaseSpec& uc) {
    auto stmts = ParseScript(uc.ddl);
    ASSERT_TRUE(stmts.ok());
    for (const auto& stmt : *stmts) {
      if (stmt.kind == StatementKind::kCreateType) {
        std::vector<adm::FieldSpec> fields;
        for (const auto& f : stmt.create_type.fields) {
          auto ft = adm::FieldTypeFromName(f.type_name);
          ASSERT_TRUE(ft.ok());
          fields.push_back({f.name, *ft, f.optional});
        }
        (void)catalog_.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
      } else if (stmt.kind == StatementKind::kCreateDataset) {
        (void)catalog_.CreateDataset(stmt.create_dataset.name,
                                     stmt.create_dataset.type_name,
                                     stmt.create_dataset.primary_key);
      } else if (stmt.kind == StatementKind::kCreateIndex) {
        auto ds = catalog_.FindDataset(stmt.create_index.dataset);
        ASSERT_NE(ds, nullptr);
        // Idempotent across use cases that share a dataset.
        (void)ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                              stmt.create_index.index_type);
      }
    }
    ASSERT_OK(workload::LoadUseCaseData(&catalog_, uc, sizes_, kCountryDomain, 7));
  }

  std::shared_ptr<const SqlppFunctionDef> ParseFn(const std::string& ddl) {
    auto s = ParseStatement(ddl);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    auto def = std::make_shared<SqlppFunctionDef>();
    def->name = s->create_function.name;
    def->params = s->create_function.params;
    def->body =
        std::shared_ptr<const SelectStatement>(std::move(s->create_function.body));
    return def;
  }

  static constexpr size_t kCountryDomain = 100;
  workload::RefSizes sizes_;
  storage::Catalog catalog_;
  storage::CatalogAccessor accessor_;
  feed::UdfRegistry udfs_;
};

TEST_F(BatchEquivalenceTest, BatchMatchesScalarAcrossUdfSuite) {
  // §7.2 cases 1-5 plus §7.4.2 cases 6-8 (Nearby Monuments is in both).
  for (auto id :
       {workload::UseCaseId::kSafetyRating, workload::UseCaseId::kReligiousPopulation,
        workload::UseCaseId::kLargestReligions, workload::UseCaseId::kFuzzySuspects,
        workload::UseCaseId::kNearbyMonuments, workload::UseCaseId::kSuspiciousNames,
        workload::UseCaseId::kTweetContext, workload::UseCaseId::kWorrisomeTweets}) {
    const auto& uc = workload::GetUseCase(id);
    SetupUseCase(uc);
    auto def = ParseFn(uc.function_ddl);
    auto batched = EnrichmentPlan::Compile(def, &accessor_, &udfs_);
    ASSERT_TRUE(batched.ok()) << uc.name << ": " << batched.status().ToString();
    auto scalar = EnrichmentPlan::Compile(def, &accessor_, &udfs_);
    ASSERT_TRUE(scalar.ok());
    ASSERT_OK((*batched)->Initialize());
    ASSERT_OK((*scalar)->Initialize());

    workload::TweetGenerator gen({.seed = 31, .country_domain = kCountryDomain});
    std::vector<Value> batch;
    adm::Datatype tweet_type("T", {{"created_at", adm::FieldType::kDateTime, false}});
    for (int i = 0; i < 60; ++i) {
      Value tweet = gen.NextValue();
      ASSERT_OK(tweet_type.ValidateAndCoerce(&tweet));
      batch.push_back(std::move(tweet));
    }

    adm::Array batch_out;
    ASSERT_OK((*batched)->EnrichBatch(batch, &batch_out));
    ASSERT_EQ(batch_out.size(), batch.size());

    for (size_t i = 0; i < batch.size(); ++i) {
      auto one = (*scalar)->EnrichOne(batch[i]);
      ASSERT_TRUE(one.ok()) << uc.name << ": " << one.status().ToString();
      // Bit-identical: compare the canonical serializations, which encode
      // type tags, field order, and every payload byte.
      EXPECT_EQ(adm::SerializeToBytes(batch_out[i]), adm::SerializeToBytes(*one))
          << uc.name << " record " << i << "\nbatch:  " << batch_out[i].ToString()
          << "\nscalar: " << one->ToString();
    }
  }
}

TEST_F(BatchEquivalenceTest, RepeatedBatchesReuseArenaWithoutDrift) {
  // Re-running batches through one plan (arena reset between batches) keeps
  // producing the same bytes as the first pass.
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kReligiousPopulation);
  SetupUseCase(uc);
  auto plan = EnrichmentPlan::Compile(ParseFn(uc.function_ddl), &accessor_, &udfs_);
  ASSERT_TRUE(plan.ok());
  ASSERT_OK((*plan)->Initialize());

  workload::TweetGenerator gen({.seed = 5, .country_domain = kCountryDomain});
  std::vector<Value> batch;
  for (int i = 0; i < 32; ++i) batch.push_back(gen.NextValue());

  adm::Array first;
  ASSERT_OK((*plan)->EnrichBatch(batch, &first));
  for (int round = 0; round < 3; ++round) {
    adm::Array again;
    ASSERT_OK((*plan)->EnrichBatch(batch, &again));
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(adm::SerializeToBytes(again[i]), adm::SerializeToBytes(first[i]));
    }
  }
}

}  // namespace
}  // namespace idea::sqlpp
