// Property tests for incremental intermediate-state maintenance: a plan that
// refreshes its cached hash builds / snapshots from the reference dataset's
// mutation delta must enrich bit-identically to a plan that rebuilds from
// scratch every invocation — across random upsert/delete churn, the no-change
// steady state, and the changelog-wrap fall-back.
#include <gtest/gtest.h>

#include "adm/json.h"
#include "common/rng.h"
#include "sqlpp/enrichment_plan.h"
#include "sqlpp/parser.h"
#include "storage/catalog.h"
#include "workload/reference_data.h"
#include "workload/tweets.h"
#include "workload/usecases.h"

namespace idea::sqlpp {
namespace {

using adm::Value;

class EmptyResolver : public FunctionResolver {
 public:
  const SqlppFunctionDef* FindSqlppFunction(const std::string&) const override {
    return nullptr;
  }
  NativeFunctionHandle* FindNativeFunction(const std::string&) const override {
    return nullptr;
  }
};

std::shared_ptr<const SqlppFunctionDef> ParseFn(const std::string& ddl) {
  auto s = ParseStatement(ddl);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  auto def = std::make_shared<SqlppFunctionDef>();
  def->name = s->create_function.name;
  def->params = s->create_function.params;
  def->body = std::shared_ptr<const SelectStatement>(std::move(s->create_function.body));
  return def;
}

class DeltaRefreshTest : public ::testing::Test {
 protected:
  DeltaRefreshTest() : accessor_(&catalog_, /*cache_snapshots=*/true) {}

  /// Creates the use case's types/datasets/indexes with the given changelog
  /// ring capacity, then loads the (downscaled) reference data.
  void Setup(const workload::UseCaseSpec& uc, size_t changelog_capacity) {
    auto stmts = ParseScript(uc.ddl);
    ASSERT_TRUE(stmts.ok());
    storage::DatasetOptions options;
    options.changelog_capacity = changelog_capacity;
    for (const auto& stmt : *stmts) {
      if (stmt.kind == StatementKind::kCreateType) {
        std::vector<adm::FieldSpec> fields;
        for (const auto& f : stmt.create_type.fields) {
          auto ft = adm::FieldTypeFromName(f.type_name);
          ASSERT_TRUE(ft.ok());
          fields.push_back({f.name, *ft, f.optional});
        }
        (void)catalog_.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
      } else if (stmt.kind == StatementKind::kCreateDataset) {
        ASSERT_TRUE(catalog_
                        .CreateDataset(stmt.create_dataset.name,
                                       stmt.create_dataset.type_name,
                                       stmt.create_dataset.primary_key, options)
                        .ok());
      } else if (stmt.kind == StatementKind::kCreateIndex) {
        auto ds = catalog_.FindDataset(stmt.create_index.dataset);
        ASSERT_NE(ds, nullptr);
        ASSERT_TRUE(ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                                    stmt.create_index.index_type)
                        .ok());
      }
    }
    workload::RefSizes sizes = workload::SimulatorScaleSizes().Scaled(0.1);
    ASSERT_TRUE(workload::LoadUseCaseData(&catalog_, uc, sizes, 100, 1).ok());
  }

  /// One round of random churn: upserts of fresh records plus deletes of
  /// random existing keys against `dataset` (pk values from the shared
  /// country-code / monument-id domains via GenUpdateFor).
  void Churn(const std::string& dataset, size_t n_existing, size_t upserts,
             size_t deletes, Rng* rng) {
    auto ds = catalog_.FindDataset(dataset);
    ASSERT_NE(ds, nullptr);
    for (size_t i = 0; i < upserts; ++i) {
      Value rec = workload::GenUpdateFor(dataset, n_existing, 500, rng->Next() % 100000);
      ASSERT_TRUE(ds->Upsert(std::move(rec)).ok());
    }
    for (size_t i = 0; i < deletes; ++i) {
      Value victim = workload::GenUpdateFor(dataset, n_existing, 500, rng->Next() % 100000);
      const Value* pk = victim.GetField(ds->primary_key());
      ASSERT_NE(pk, nullptr);
      (void)ds->Delete(*pk);  // NotFound for already-deleted keys is fine
    }
  }

  /// Initializes both plans in a fresh epoch and asserts they enrich the same
  /// tweet batch identically.
  void CheckBatch(EnrichmentPlan* delta_plan, EnrichmentPlan* full_plan,
                  workload::TweetGenerator* gen, size_t batch) {
    accessor_.BeginEpoch();
    ASSERT_TRUE(delta_plan->Initialize().ok());
    ASSERT_TRUE(full_plan->Initialize().ok());
    for (size_t i = 0; i < batch; ++i) {
      Value tweet = gen->NextValue();
      auto a = delta_plan->EnrichOne(tweet);
      auto b = full_plan->EnrichOne(tweet);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_EQ(*a, *b) << "delta: " << a->ToString() << "\nfull:  " << b->ToString();
    }
  }

  storage::Catalog catalog_;
  storage::CatalogAccessor accessor_;
  EmptyResolver resolver_;
};

TEST_F(DeltaRefreshTest, HashPathMatchesFullRebuildUnderRandomChurn) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  Setup(uc, /*changelog_capacity=*/8192);
  auto def = ParseFn(uc.function_ddl);
  PlanConfig delta_cfg;  // delta refresh on (default)
  PlanConfig full_cfg;
  full_cfg.enable_delta_refresh = false;
  auto delta_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_, delta_cfg);
  auto full_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_, full_cfg);
  ASSERT_TRUE(delta_plan.ok());
  ASSERT_TRUE(full_plan.ok());
  ASSERT_EQ((*delta_plan)->choices()[0].kind, AccessPathKind::kHashBuildProbe);

  size_t n = workload::SimulatorScaleSizes().Scaled(0.1).safety_ratings;
  Rng rng(0xD31AD31A);
  workload::TweetGenerator gen({.seed = 99, .country_domain = 500});
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 24);  // first = full build
  for (int round = 0; round < 8; ++round) {
    Churn("SafetyRatings", n, /*upserts=*/20, /*deletes=*/6, &rng);
    CheckBatch(delta_plan->get(), full_plan->get(), &gen, 24);
  }
  const PlanStats& ds = (*delta_plan)->stats();
  EXPECT_GE(ds.delta_refreshes, 1u) << "churn rounds never took the delta path";
  EXPECT_GT(ds.delta_records_applied, 0u);
  // The control plan must rebuild every single time.
  EXPECT_EQ((*full_plan)->stats().full_rebuilds, (*full_plan)->stats().initializations);
  EXPECT_EQ((*full_plan)->stats().delta_refreshes, 0u);

  // Steady state: nothing changed since the last refresh -> no-op.
  uint64_t noops_before = ds.noop_refreshes;
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 8);
  EXPECT_EQ(ds.last_refresh, RefreshKind::kNoop);
  EXPECT_EQ(ds.noop_refreshes, noops_before + 1);
}

TEST_F(DeltaRefreshTest, ScanPathMatchesFullRebuildUnderRandomChurn) {
  // The naive (skip-index) Nearby Monuments plan scans its cached snapshot;
  // candidate order must match a rebuilt scan exactly.
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kNearbyMonuments);
  Setup(uc, /*changelog_capacity=*/8192);
  auto def = ParseFn(workload::NaiveNearbyMonumentsFunctionDdl());
  PlanConfig full_cfg;
  full_cfg.enable_delta_refresh = false;
  auto delta_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_);
  auto full_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_, full_cfg);
  ASSERT_TRUE(delta_plan.ok());
  ASSERT_TRUE(full_plan.ok());
  ASSERT_EQ((*delta_plan)->choices()[0].kind, AccessPathKind::kScan);

  size_t n = workload::SimulatorScaleSizes().Scaled(0.1).monuments;
  Rng rng(0x5CA40000);
  workload::TweetGenerator gen({.seed = 11, .country_domain = 500});
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 16);
  for (int round = 0; round < 6; ++round) {
    Churn("monumentList", n, /*upserts=*/16, /*deletes=*/5, &rng);
    CheckBatch(delta_plan->get(), full_plan->get(), &gen, 16);
  }
  EXPECT_GE((*delta_plan)->stats().delta_refreshes, 1u);
}

TEST_F(DeltaRefreshTest, ChangelogWrapFallsBackToFullRebuild) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  Setup(uc, /*changelog_capacity=*/16);  // tiny ring: churn wraps it
  auto def = ParseFn(uc.function_ddl);
  auto delta_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_);
  PlanConfig full_cfg;
  full_cfg.enable_delta_refresh = false;
  auto full_plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_, full_cfg);
  ASSERT_TRUE(delta_plan.ok());
  ASSERT_TRUE(full_plan.ok());

  size_t n = workload::SimulatorScaleSizes().Scaled(0.1).safety_ratings;
  Rng rng(0x44AA);
  workload::TweetGenerator gen({.seed = 5, .country_domain = 500});
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 16);

  // Far more changes than the ring holds: ScanDelta must report the wrap and
  // the plan must transparently rebuild, still matching the control plan.
  uint64_t fulls_before = (*delta_plan)->stats().full_rebuilds;
  Churn("SafetyRatings", n, /*upserts=*/64, /*deletes=*/0, &rng);
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 16);
  EXPECT_EQ((*delta_plan)->stats().full_rebuilds, fulls_before + 1);
  EXPECT_EQ((*delta_plan)->stats().last_refresh, RefreshKind::kFull);
  EXPECT_GE(catalog_.FindDataset("SafetyRatings")->stats().delta_wraps, 1u);

  // Small follow-up churn fits the ring again: back on the delta path.
  Churn("SafetyRatings", n, /*upserts=*/4, /*deletes=*/1, &rng);
  CheckBatch(delta_plan->get(), full_plan->get(), &gen, 16);
  EXPECT_EQ((*delta_plan)->stats().last_refresh, RefreshKind::kDelta);
}

TEST_F(DeltaRefreshTest, OversizedDeltaPrefersRebuild) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
  Setup(uc, /*changelog_capacity=*/1u << 20);  // ring never wraps here
  auto def = ParseFn(uc.function_ddl);
  PlanConfig cfg;
  cfg.max_delta_fraction = 0.0;  // floor of 64 changes still applies
  auto plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_, cfg);
  ASSERT_TRUE(plan.ok());
  accessor_.BeginEpoch();
  ASSERT_TRUE((*plan)->Initialize().ok());

  size_t n = workload::SimulatorScaleSizes().Scaled(0.1).safety_ratings;
  Rng rng(0xBEEF);
  Churn("SafetyRatings", n, /*upserts=*/200, /*deletes=*/0, &rng);
  accessor_.BeginEpoch();
  ASSERT_TRUE((*plan)->Initialize().ok());
  EXPECT_EQ((*plan)->stats().last_refresh, RefreshKind::kFull);
  EXPECT_EQ((*plan)->stats().delta_refreshes, 0u);
}

}  // namespace
}  // namespace idea::sqlpp
