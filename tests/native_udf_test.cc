#include <gtest/gtest.h>

#include <fstream>

#include "adm/json.h"
#include "adm/spatial.h"
#include "workload/native_udfs.h"
#include "workload/reference_data.h"
#include "workload/tweets.h"

namespace idea::workload {
namespace {

using adm::Value;

class NativeUdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/native_udf_test";
    (void)::system(("mkdir -p " + dir_).c_str());
    sizes_ = SimulatorScaleSizes().Scaled(0.05);
    ASSERT_TRUE(WriteNativeResources(dir_, sizes_, 100, 1).ok());
    ASSERT_TRUE(RegisterNativeUdfs(&registry_, dir_).ok());
  }

  Value Call(const std::string& name, const Value& arg) {
    auto instance = registry_.CreateNativeInstance(name, "n0");
    EXPECT_TRUE(instance.ok()) << name << ": " << instance.status().ToString();
    auto r = (*instance)->Evaluate(sqlpp::ArgView(&arg, 1));
    EXPECT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Value();
  }

  std::string dir_;
  RefSizes sizes_;
  feed::UdfRegistry registry_;
};

TEST_F(NativeUdfTest, RemoveSpecialIsStateless) {
  Value out = Call("testlib#removeSpecial", Value::MakeString("@Dr_Evil#42!"));
  EXPECT_EQ(out.AsString(), "drevil");
  EXPECT_FALSE(registry_.IsNativeStateful("testlib#removeSpecial"));
}

TEST_F(NativeUdfTest, UsTweetSafetyCheckMatchesFigure5) {
  Value red = Call("testlib#usTweetSafetyCheck",
                   adm::ParseJson(R"({"country":"US","text":"a bomb"})").value());
  EXPECT_EQ(red.GetField("safety_check_flag")->AsString(), "Red");
  Value green = Call("testlib#usTweetSafetyCheck",
                     adm::ParseJson(R"({"country":"FR","text":"a bomb"})").value());
  EXPECT_EQ(green.GetField("safety_check_flag")->AsString(), "Green");
}

TEST_F(NativeUdfTest, TweetSafetyCheckLoadsKeywordList) {
  EXPECT_TRUE(registry_.IsNativeStateful("testlib#tweetSafetyCheck"));
  // Build a controlled keyword file.
  {
    std::ofstream f(dir_ + "/sensitive_words.txt", std::ios::trunc);
    f << "W1|US|bomb\nW2|FR|siege\n";
  }
  Value red = Call("testlib#tweetSafetyCheck",
                   adm::ParseJson(R"({"country":"US","text":"the bomb"})").value());
  EXPECT_EQ(red.GetField("safety_check_flag")->AsString(), "Red");
  Value green = Call("testlib#tweetSafetyCheck",
                     adm::ParseJson(R"({"country":"US","text":"la siege"})").value());
  EXPECT_EQ(green.GetField("safety_check_flag")->AsString(), "Green");
}

TEST_F(NativeUdfTest, ReinitializationPicksUpResourceChanges) {
  {
    std::ofstream f(dir_ + "/safety_ratings.txt", std::ios::trunc);
    f << "C00001|low\n";
  }
  auto instance = registry_.CreateNativeInstance("testlib#safetyRating", "n0");
  ASSERT_TRUE(instance.ok());
  Value tweet = adm::ParseJson(R"({"country":"C00001"})").value();
  Value v1 = (*instance)->Evaluate(sqlpp::ArgView(&tweet, 1)).value();
  EXPECT_EQ(v1.GetField("safety_rating")->AsArray()[0].AsString(), "low");
  // Change the resource file: visible only after re-initialization (the
  // dynamic framework re-initializes per computing job; the static pipeline
  // never does — the staleness the paper measures).
  {
    std::ofstream f(dir_ + "/safety_ratings.txt", std::ios::trunc);
    f << "C00001|high\n";
  }
  Value stale = (*instance)->Evaluate(sqlpp::ArgView(&tweet, 1)).value();
  EXPECT_EQ(stale.GetField("safety_rating")->AsArray()[0].AsString(), "low");
  ASSERT_TRUE((*instance)->Initialize("n0").ok());
  Value fresh = (*instance)->Evaluate(sqlpp::ArgView(&tweet, 1)).value();
  EXPECT_EQ(fresh.GetField("safety_rating")->AsArray()[0].AsString(), "high");
}

TEST_F(NativeUdfTest, ReligiousPopulationSumsPerCountry) {
  {
    std::ofstream f(dir_ + "/religious_populations.txt", std::ios::trunc);
    f << "R1|C00001|a|100\nR2|C00001|b|250\nR3|C00002|a|7\n";
  }
  Value out = Call("testlib#religiousPopulation",
                   adm::ParseJson(R"({"country":"C00001"})").value());
  EXPECT_EQ(out.GetField("religious_population")->AsInt(), 350);
  Value none = Call("testlib#religiousPopulation",
                    adm::ParseJson(R"({"country":"C09999"})").value());
  EXPECT_TRUE(none.GetField("religious_population")->IsNull());
}

TEST_F(NativeUdfTest, LargestReligionsUsesAppendixOrdering) {
  {
    std::ofstream f(dir_ + "/religious_populations.txt", std::ios::trunc);
    f << "R1|C00001|big|900\nR2|C00001|small|10\nR3|C00001|mid|500\nR4|C00001|tiny|1\n";
  }
  Value out = Call("testlib#largestReligions",
                   adm::ParseJson(R"({"country":"C00001"})").value());
  const auto& arr = out.GetField("largest_religions")->AsArray();
  // Appendix C orders ORDER BY r.population (ascending) LIMIT 3.
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].AsString(), "tiny");
  EXPECT_EQ(arr[1].AsString(), "small");
  EXPECT_EQ(arr[2].AsString(), "mid");
}

TEST_F(NativeUdfTest, FuzzySuspectsEditDistance) {
  {
    std::ofstream f(dir_ + "/sensitive_names.txt", std::ios::trunc);
    f << "S1|averyashford|luminism\nS2|zzzzzzzzzzzzzzzz|noctism\n";
  }
  Value tweet = adm::ParseJson(
                    R"({"user": {"screen_name": "@Avery_Ashford#7", "name": "x"}})")
                    .value();
  Value out = Call("testlib#fuzzySuspects", tweet);
  const auto& related = out.GetField("related_suspects")->AsArray();
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0].GetField("sensitiveName")->AsString(), "averyashford");
}

TEST_F(NativeUdfTest, NearbyMonumentsLinearScan) {
  {
    std::ofstream f(dir_ + "/monuments.txt", std::ios::trunc);
    f << "M1|10.0|10.0\nM2|50.0|50.0\n";
  }
  Value tweet = adm::ParseJson(R"({"latitude": 10.5, "longitude": 10.5})").value();
  Value out = Call("testlib#nearbyMonuments", tweet);
  const auto& nearby = out.GetField("nearby_monuments")->AsArray();
  ASSERT_EQ(nearby.size(), 1u);
  EXPECT_EQ(nearby[0].AsString(), "M1");
}

TEST_F(NativeUdfTest, MissingResourceFileFailsInitialize) {
  feed::UdfRegistry fresh;
  ASSERT_TRUE(RegisterNativeUdfs(&fresh, "/nonexistent/dir").ok());
  auto r = fresh.CreateNativeInstance("testlib#safetyRating", "n0");
  EXPECT_FALSE(r.ok());
}

TEST_F(NativeUdfTest, UnknownNativeIsNotFound) {
  EXPECT_FALSE(registry_.CreateNativeInstance("testlib#nope", "n0").ok());
  EXPECT_FALSE(registry_.HasNative("testlib#nope"));
  EXPECT_TRUE(registry_.HasNative("testlib#fuzzySuspects"));
}

TEST(ReferenceDataTest, GeneratorsAreDeterministic) {
  auto a = GenSafetyRatings(50, 9);
  auto b = GenSafetyRatings(50, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  auto c = GenSafetyRatings(50, 10);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= !(a[i] == c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(ReferenceDataTest, DistrictsTileTheTweetSpace) {
  auto districts = GenDistrictAreas(200, 0);
  TweetGenerator gen({.seed = 4, .country_domain = 10});
  for (int i = 0; i < 100; ++i) {
    Value tweet = gen.NextValue();
    adm::Point p{tweet.GetField("latitude")->AsDouble(),
                 tweet.GetField("longitude")->AsDouble()};
    int containing = 0;
    for (const auto& d : districts) {
      if (adm::RectContainsPoint(d.GetField("district_area")->AsRectangle(), p)) {
        ++containing;
      }
    }
    EXPECT_GE(containing, 1) << tweet.ToString();
    EXPECT_LE(containing, 4);  // boundary points may touch a few tiles
  }
}

TEST(ReferenceDataTest, ScaledSizesApplyFactor) {
  RefSizes base = SimulatorScaleSizes();
  RefSizes doubled = base.Scaled(2.0);
  EXPECT_EQ(doubled.monuments, base.monuments * 2);
  RefSizes tiny = base.Scaled(0.0001);
  EXPECT_GE(tiny.monuments, 1u);
}

TEST(TweetGeneratorTest, TweetsCarryAllUdfFields) {
  TweetGenerator gen({.seed = 1, .country_domain = 20});
  for (int i = 0; i < 20; ++i) {
    Value t = gen.NextValue();
    EXPECT_TRUE(t.GetField("id")->IsInt());
    EXPECT_TRUE(t.GetField("text")->IsString());
    EXPECT_TRUE(t.GetField("country")->IsString());
    EXPECT_TRUE(t.GetField("latitude")->IsDouble());
    EXPECT_TRUE(t.GetField("longitude")->IsDouble());
    EXPECT_TRUE(t.GetField("created_at")->IsString());
    EXPECT_TRUE(t.GetField("user")->GetField("screen_name")->IsString());
  }
}

TEST(TweetGeneratorTest, JsonNearPaperRecordSize) {
  auto records = TweetGenerator::GenerateJson(200, {.seed = 2, .country_domain = 100});
  size_t total = 0;
  for (const auto& r : *records) total += r.size();
  double avg = static_cast<double>(total) / 200.0;
  // Paper §7.1: each tweet record is ~450 bytes.
  EXPECT_GT(avg, 350.0);
  EXPECT_LT(avg, 600.0);
}

}  // namespace
}  // namespace idea::workload
