#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include <algorithm>

#include "adm/json.h"
#include "feed/active_feed_manager.h"
#include "feed/adapter.h"
#include "feed/static_pipeline.h"
#include "obs/tracer.h"
#include "workload/tweets.h"
#include "sqlpp/parser.h"
#include "workload/usecases.h"

namespace idea::feed {
namespace {

using adm::Value;

/// Shared fixture: a small cluster + Tweets/EnrichedTweets + SensitiveWords
/// with the Figure 8 UDF.
class FeedPipelineTest : public ::testing::Test {
 protected:
  FeedPipelineTest() {
    cluster::ClusterConfig cc;
    cc.nodes = 3;
    cc.mode = cluster::ExecutionMode::kThreads;
    cluster_ = std::make_unique<cluster::Cluster>(cc);
    afm_ = std::make_unique<ActiveFeedManager>(cluster_.get(), &catalog_, &udfs_);

    SetupTypes();
  }

  void SetupTypes() {
    ASSERT_TRUE(catalog_
                    .CreateDatatype(adm::Datatype(
                        "TweetType", {{"id", adm::FieldType::kInt64, false},
                                      {"text", adm::FieldType::kString, false}}))
                    .ok());
    ASSERT_TRUE(catalog_.CreateDataset("Tweets", "TweetType", "id").ok());
    ASSERT_TRUE(catalog_.CreateDataset("EnrichedTweets", "TweetType", "id").ok());
    ASSERT_TRUE(catalog_
                    .CreateDatatype(adm::Datatype(
                        "SensitiveWordType", {{"wid", adm::FieldType::kString, false}}))
                    .ok());
    ASSERT_TRUE(catalog_.CreateDataset("SensitiveWords", "SensitiveWordType", "wid").ok());
    auto words = catalog_.FindDataset("SensitiveWords");
    ASSERT_TRUE(words
                    ->Upsert(adm::ParseJson(
                                 R"({"wid":"W1","country":"US","word":"bomb"})")
                                 .value())
                    .ok());

    // Figure 8 UDF.
    auto fn = sqlpp::ParseStatement(workload::TweetSafetyCheckFunctionDdl());
    ASSERT_TRUE(fn.ok());
    sqlpp::SqlppFunctionDef def;
    def.name = fn->create_function.name;
    def.params = fn->create_function.params;
    def.body = std::shared_ptr<const sqlpp::SelectStatement>(
        std::move(fn->create_function.body));
    ASSERT_TRUE(udfs_.RegisterSqlpp(std::move(def), false).ok());
  }

  static std::shared_ptr<std::vector<std::string>> MakeTweets(size_t n) {
    auto records = std::make_shared<std::vector<std::string>>();
    for (size_t i = 0; i < n; ++i) {
      std::string country = i % 2 == 0 ? "US" : "CA";
      std::string text = i % 4 == 0 ? "there is a bomb here" : "sunny day";
      records->push_back("{\"id\": " + std::to_string(i) + ", \"text\": \"" + text +
                         "\", \"country\": \"" + country + "\"}");
    }
    return records;
  }

  storage::Catalog catalog_;
  UdfRegistry udfs_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<ActiveFeedManager> afm_;
};

TEST_F(FeedPipelineTest, BasicIngestionWithoutUdf) {
  auto records = MakeTweets(500);
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  auto stats = afm_->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 500u);
  EXPECT_GE(stats->computing_jobs, 500u / 60u);
  EXPECT_EQ(catalog_.FindDataset("Tweets")->LiveRecordCount(), 500u);
}

TEST_F(FeedPipelineTest, StatefulSqlppUdfEnrichesDuringIngestion) {
  auto records = MakeTweets(200);
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 40;
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  ASSERT_TRUE(afm_->WaitForFeed("F").ok());

  auto snap = catalog_.FindDataset("EnrichedTweets")->Scan();
  ASSERT_EQ(snap->size(), 200u);
  size_t red = 0;
  for (const auto& rec : *snap) {
    const Value* flag = rec.GetField("safety_check_flag");
    ASSERT_NE(flag, nullptr) << rec.ToString();
    if (flag->AsString() == "Red") ++red;
  }
  // Red requires US (every other tweet) AND "bomb" (every fourth): ids ≡ 0 mod 4.
  EXPECT_EQ(red, 50u);
}

TEST_F(FeedPipelineTest, BalancedIntakeUsesAllNodes) {
  auto records = MakeTweets(300);
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 50;
  args.config.balanced_intake = true;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  ASSERT_TRUE(afm_->WaitForFeed("F").ok());
  EXPECT_EQ(catalog_.FindDataset("Tweets")->LiveRecordCount(), 300u);
}

TEST_F(FeedPipelineTest, DynamicEnrichmentSeesReferenceUpdatesBetweenBatches) {
  // Manual batch control: deploy + run computing jobs one at a time.
  FeedConfig config;
  config.name = "Manual";
  config.type_name = "TweetType";
  config.batch_size = 3;  // one per node
  ASSERT_TRUE(ComputingJob::Deploy("Manual", config, "tweetSafetyCheck", cluster_.get(),
                                   &catalog_, &udfs_)
                  .ok());
  // Wire holders manually (normally the intake/storage jobs do this).
  auto dataset = catalog_.FindDataset("EnrichedTweets");
  StorageJob storage("Manual", cluster_.get(), dataset);
  ASSERT_TRUE(storage.Start().ok());
  std::vector<std::shared_ptr<runtime::IntakePartitionHolder>> intake;
  for (size_t p = 0; p < cluster_->node_count(); ++p) {
    auto holder = std::make_shared<runtime::IntakePartitionHolder>(
        runtime::PartitionHolderId{"Manual", "intake", p});
    ASSERT_TRUE(cluster_->node(p).holders().RegisterIntake(holder).ok());
    intake.push_back(holder);
  }

  auto push_round = [&](int64_t base_id) {
    for (size_t p = 0; p < 3; ++p) {
      ASSERT_TRUE(intake[p]
                      ->Push("{\"id\": " + std::to_string(base_id + static_cast<int64_t>(p)) +
                             ", \"text\": \"totally sunny\", \"country\": \"US\"}")
                      .ok());
    }
  };

  push_round(0);
  auto inv1 = ComputingJob::RunOnce("Manual", config, cluster_.get());
  ASSERT_TRUE(inv1.ok()) << inv1.status().ToString();
  EXPECT_EQ(inv1->records_out, 3u);

  // Add "sunny" as a sensitive word for US: the NEXT batch must see it.
  ASSERT_TRUE(catalog_.FindDataset("SensitiveWords")
                  ->Upsert(adm::ParseJson(
                               R"({"wid":"W2","country":"US","word":"sunny"})")
                               .value())
                  .ok());

  push_round(10);
  auto inv2 = ComputingJob::RunOnce("Manual", config, cluster_.get());
  ASSERT_TRUE(inv2.ok());

  for (auto& h : intake) h->PushEof();
  auto inv3 = ComputingJob::RunOnce("Manual", config, cluster_.get());
  ASSERT_TRUE(inv3.ok());
  EXPECT_TRUE(inv3->intake_exhausted);
  storage.Close();
  storage.Join();

  auto snap = dataset->Scan();
  ASSERT_EQ(snap->size(), 6u);
  for (const auto& rec : *snap) {
    int64_t id = rec.GetField("id")->AsInt();
    const std::string& flag = rec.GetField("safety_check_flag")->AsString();
    // First batch (ids 0-2): "sunny" not yet sensitive -> Green.
    // Second batch (ids 10-12): refreshed state -> Red.
    EXPECT_EQ(flag, id < 10 ? "Green" : "Red") << rec.ToString();
  }
  ASSERT_TRUE(ComputingJob::Undeploy("Manual", cluster_.get()).ok());
}

TEST_F(FeedPipelineTest, TracedBatchCrossesAllThreePipelineStages) {
  obs::Tracer::Default().Clear();
  auto records = MakeTweets(120);
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 30;
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  ASSERT_TRUE(afm_->WaitForFeed("F").ok());

  // Every non-empty batch left a trace whose spans cover the decoupled
  // pipeline end to end: intake pull -> computing job -> storage job.
  std::vector<obs::BatchTrace> traces = obs::Tracer::Default().Recent();
  ASSERT_FALSE(traces.empty());
  bool found_full = false;
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.feed, "F");
    auto min_start = [&](const std::string& name) {
      double best = -1;
      for (const auto& s : trace.spans) {
        if (s.name == name && (best < 0 || s.start_us < best)) best = s.start_us;
      }
      return best;
    };
    for (const auto& s : trace.spans) {
      EXPECT_GE(s.dur_us, 0) << s.name;
      EXPECT_GE(s.start_us, 0) << s.name;
      EXPECT_GE(s.node, 0) << s.name;
    }
    double pull = min_start("intake.pull");
    double parse = min_start("compute.parse");
    double init = min_start("compute.init");
    double enrich = min_start("compute.enrich");
    double ship = min_start("compute.ship");
    double store = min_start("storage.store");
    double flush = min_start("storage.flush");
    if (pull < 0 || store < 0) continue;  // trailing partial batch
    ASSERT_GE(parse, 0);
    ASSERT_GE(init, 0);
    ASSERT_GE(enrich, 0);
    ASSERT_GE(ship, 0);
    ASSERT_GE(flush, 0);
    // Stage starts are ordered: a node parses only after its pull returned,
    // enriches after state init, ships after enrichment, and the storage job
    // stores/flushes a frame only after some node shipped it.
    EXPECT_LE(pull, parse);
    EXPECT_LE(parse, init);
    EXPECT_LE(init, enrich);
    EXPECT_LE(enrich, ship);
    EXPECT_LE(ship, store);
    EXPECT_LE(store, flush);
    found_full = true;
  }
  EXPECT_TRUE(found_full);
}

TEST_F(FeedPipelineTest, StaticPipelineRejectsStatefulSqlppUdf) {
  StaticFeedPipeline pipeline(cluster_.get(), &catalog_, &udfs_);
  StaticFeedPipeline::StartArgs args;
  args.config.name = "S";
  args.config.type_name = "TweetType";
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";  // stateful!
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(10));
  Status st = pipeline.Start(std::move(args));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST_F(FeedPipelineTest, StaticPipelineIngestsWithStatelessUdf) {
  // Figure 6's stateless UDF is fine on the static pipeline.
  auto fn = sqlpp::ParseStatement(R"(
    CREATE FUNCTION USTweetSafetyCheck(tweet) {
      LET safety_check_flag =
        CASE tweet.country = "US" AND contains(tweet.text, "bomb")
          WHEN true THEN "Red" ELSE "Green" END
      SELECT tweet.*, safety_check_flag
    };)");
  ASSERT_TRUE(fn.ok());
  sqlpp::SqlppFunctionDef def;
  def.name = "USTweetSafetyCheck";
  def.params = fn->create_function.params;
  def.body = std::shared_ptr<const sqlpp::SelectStatement>(
      std::move(fn->create_function.body));
  ASSERT_TRUE(udfs_.RegisterSqlpp(std::move(def), false).ok());

  StaticFeedPipeline pipeline(cluster_.get(), &catalog_, &udfs_);
  StaticFeedPipeline::StartArgs args;
  args.config.name = "S";
  args.config.type_name = "TweetType";
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "USTweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(100));
  ASSERT_TRUE(pipeline.Start(std::move(args)).ok());
  auto stats = pipeline.Wait();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_ingested, 100u);
  EXPECT_EQ(catalog_.FindDataset("EnrichedTweets")->LiveRecordCount(), 100u);
}

TEST_F(FeedPipelineTest, StopFeedDrainsInFlightRecords) {
  // Infinite generator; STOP FEED must cut it off and drain cleanly.
  std::atomic<int64_t> next_id{0};
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 30;
  args.connection.dataset = "Tweets";
  args.adapter_factory = [&](size_t, size_t) -> Result<std::unique_ptr<FeedAdapter>> {
    return std::unique_ptr<FeedAdapter>(
        std::make_unique<GeneratorAdapter>([&](std::string* out) {
          int64_t id = next_id.fetch_add(1);
          *out = "{\"id\": " + std::to_string(id) + ", \"text\": \"x\"}";
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return true;
        }));
  };
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(afm_->StopFeed("F").ok());
  auto stats = afm_->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->records_ingested, 0u);
  // Every generated-and-accepted record must be stored (drain, not drop).
  EXPECT_EQ(catalog_.FindDataset("Tweets")->LiveRecordCount(),
            stats->records_ingested);
}

TEST_F(FeedPipelineTest, ParseErrorsAreCountedNotFatal) {
  auto records = std::make_shared<std::vector<std::string>>();
  records->push_back("{\"id\": 1, \"text\": \"ok\"}");
  records->push_back("{{{not json");
  records->push_back("{\"id\": 2, \"text\": \"ok\"}");
  records->push_back("{\"text\": \"missing id\"}");  // fails datatype check
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 2;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  auto stats = afm_->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_ingested, 2u);
  // Lexer failures and datatype rejects are counted apart.
  EXPECT_EQ(stats->parse_errors, 1u);
  EXPECT_EQ(stats->validation_errors, 1u);
}

TEST_F(FeedPipelineTest, FeedCannotStartTwice) {
  auto records = MakeTweets(50);
  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm_->StartFeed(std::move(args)).ok());
  ActiveFeedManager::StartArgs again;
  again.config.name = "F";
  again.connection.dataset = "Tweets";
  again.adapter_factory = MakeVectorAdapterFactory(records);
  EXPECT_EQ(afm_->StartFeed(std::move(again)).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(afm_->WaitForFeed("F").ok());
}

TEST_F(FeedPipelineTest, TwoConcurrentFeedsShareNodePoolsWithoutCrosstalk) {
  // Two feeds run at once on the same per-node worker pools; each must drain
  // fully and report only its own traffic.
  auto r1 = MakeTweets(300);
  auto r2 = MakeTweets(500);
  ActiveFeedManager::StartArgs a1;
  a1.config.name = "F1";
  a1.config.type_name = "TweetType";
  a1.config.batch_size = 40;
  a1.connection.dataset = "Tweets";
  a1.adapter_factory = MakeVectorAdapterFactory(r1);
  ActiveFeedManager::StartArgs a2;
  a2.config.name = "F2";
  a2.config.type_name = "TweetType";
  a2.config.batch_size = 60;
  a2.connection.dataset = "EnrichedTweets";
  a2.connection.apply_function = "tweetSafetyCheck";
  a2.adapter_factory = MakeVectorAdapterFactory(r2);
  ASSERT_TRUE(afm_->StartFeed(std::move(a1)).ok());
  ASSERT_TRUE(afm_->StartFeed(std::move(a2)).ok());
  ASSERT_EQ(afm_->ActiveFeeds().size(), 2u);
  auto s1 = afm_->WaitForFeedStats("F1");
  auto s2 = afm_->WaitForFeedStats("F2");
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_EQ(s1->records_ingested, 300u);
  EXPECT_EQ(s2->records_ingested, 500u);
  EXPECT_EQ(catalog_.FindDataset("Tweets")->LiveRecordCount(), 300u);
  EXPECT_EQ(catalog_.FindDataset("EnrichedTweets")->LiveRecordCount(), 500u);
}

class FailingUdf : public NativeUdf {
 public:
  Result<Value> Evaluate(sqlpp::ArgView) override {
    return Status::Internal("injected UDF failure");
  }
};

TEST_F(FeedPipelineTest, UdfErrorInOneFeedDoesNotStallAnother) {
  ASSERT_TRUE(udfs_
                  .RegisterNative(
                      "testlib#alwaysFail",
                      [] { return std::make_unique<FailingUdf>(); },
                      /*stateful=*/false)
                  .ok());
  auto bad = MakeTweets(200);
  auto good = MakeTweets(400);
  ActiveFeedManager::StartArgs ab;
  ab.config.name = "Bad";
  ab.config.type_name = "TweetType";
  ab.config.batch_size = 30;
  ab.connection.dataset = "EnrichedTweets";
  ab.connection.apply_function = "testlib#alwaysFail";
  ab.adapter_factory = MakeVectorAdapterFactory(bad);
  ActiveFeedManager::StartArgs ag;
  ag.config.name = "Good";
  ag.config.type_name = "TweetType";
  ag.config.batch_size = 50;
  ag.connection.dataset = "Tweets";
  ag.adapter_factory = MakeVectorAdapterFactory(good);
  ASSERT_TRUE(afm_->StartFeed(std::move(ab)).ok());
  ASSERT_TRUE(afm_->StartFeed(std::move(ag)).ok());
  // The failing feed must terminate with the injected error...
  auto sb = afm_->WaitForFeedStats("Bad");
  ASSERT_FALSE(sb.ok());
  EXPECT_NE(sb.status().ToString().find("injected UDF failure"), std::string::npos);
  // ...while the healthy feed, sharing every pool, drains completely.
  auto sg = afm_->WaitForFeedStats("Good");
  ASSERT_TRUE(sg.ok()) << sg.status().ToString();
  EXPECT_EQ(sg->records_ingested, 400u);
  EXPECT_EQ(catalog_.FindDataset("Tweets")->LiveRecordCount(), 400u);
}

TEST(SocketAdapterTest, ReceivesNewlineDelimitedRecords) {
  auto adapter = SocketAdapter::Listen(0);
  ASSERT_TRUE(adapter.ok()) << adapter.status().ToString();
  int port = (*adapter)->bound_port();
  ASSERT_GT(port, 0);

  std::thread client([port] {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    for (int retry = 0; retry < 50; ++retry) {
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const char* payload = "{\"id\":1}\n{\"id\":2}\n{\"id\":3}";
    ASSERT_GT(::write(fd, payload, strlen(payload)), 0);
    ::close(fd);
  });

  std::vector<std::string> received;
  std::string rec;
  while ((*adapter)->Next(&rec)) received.push_back(rec);
  client.join();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "{\"id\":1}");
  EXPECT_EQ(received[2], "{\"id\":3}");  // final unterminated record flushed
}

}  // namespace
}  // namespace idea::feed
