#include <gtest/gtest.h>

#include <map>

#include "adm/json.h"
#include "sqlpp/evaluator.h"
#include "sqlpp/parser.h"

namespace idea::sqlpp {
namespace {

using adm::Value;

/// In-memory dataset accessor for evaluator tests.
class MapAccessor : public DatasetAccessor {
 public:
  void Add(const std::string& name, std::vector<Value> records) {
    data_[name] = std::make_shared<std::vector<Value>>(std::move(records));
  }
  bool HasDataset(const std::string& dataset) const override {
    return data_.count(dataset) > 0;
  }
  Result<Snapshot> GetSnapshot(const std::string& dataset) override {
    auto it = data_.find(dataset);
    if (it == data_.end()) return Status::NotFound(dataset);
    return Snapshot(it->second);
  }

 private:
  std::map<std::string, std::shared_ptr<std::vector<Value>>> data_;
};

/// Minimal resolver exposing registered SQL++ functions.
class MapResolver : public FunctionResolver {
 public:
  void Register(SqlppFunctionDef def) { fns_[def.name] = std::move(def); }
  const SqlppFunctionDef* FindSqlppFunction(const std::string& name) const override {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }
  NativeFunctionHandle* FindNativeFunction(const std::string&) const override {
    return nullptr;
  }

 private:
  std::map<std::string, SqlppFunctionDef> fns_;
};

Value J(const std::string& json) {
  auto v = adm::ParseJson(json);
  EXPECT_TRUE(v.ok()) << json;
  return std::move(v).value();
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    accessor_.Add("Nums", {J(R"({"id":1,"v":10,"g":"a"})"), J(R"({"id":2,"v":20,"g":"b"})"),
                           J(R"({"id":3,"v":30,"g":"a"})"), J(R"({"id":4,"v":40,"g":"b"})"),
                           J(R"({"id":5,"v":50,"g":"a"})")});
    accessor_.Add("Words", {J(R"({"country":"US","word":"bomb"})"),
                            J(R"({"country":"US","word":"attack"})"),
                            J(R"({"country":"FR","word":"siege"})")});
    ctx_.datasets = &accessor_;
    ctx_.functions = &resolver_;
  }

  Value EvalExpr(const std::string& text) {
    auto e = ParseExpression(text);
    EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
    Evaluator ev(ctx_);
    Env env;
    auto r = ev.Eval(**e, &env);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Value();
  }

  Status EvalExprStatus(const std::string& text) {
    auto e = ParseExpression(text);
    if (!e.ok()) return e.status();
    Evaluator ev(ctx_);
    Env env;
    auto r = ev.Eval(**e, &env);
    return r.ok() ? Status::OK() : r.status();
  }

  adm::Array Query(const std::string& text) {
    auto s = ParseStatement(text);
    EXPECT_TRUE(s.ok()) << text << ": " << s.status().ToString();
    EXPECT_EQ(s->kind, StatementKind::kQuery);
    Evaluator ev(ctx_);
    Env env;
    auto r = ev.EvalQuery(*s->query, &env);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : adm::Array{};
  }

  MapAccessor accessor_;
  MapResolver resolver_;
  EvalContext ctx_;
};

TEST_F(EvaluatorTest, Arithmetic) {
  EXPECT_EQ(EvalExpr("1 + 2 * 3").AsInt(), 7);
  EXPECT_DOUBLE_EQ(EvalExpr("7 / 2").AsDouble(), 3.5);
  EXPECT_EQ(EvalExpr("-(3 - 5)").AsInt(), 2);
  EXPECT_DOUBLE_EQ(EvalExpr("1.5 + 1").AsDouble(), 2.5);
  EXPECT_EQ(EvalExpr("\"a\" || \"b\"").AsString(), "ab");
  EXPECT_TRUE(EvalExpr("1 / 0").IsNull());
}

TEST_F(EvaluatorTest, ThreeValuedLogic) {
  EXPECT_TRUE(EvalExpr("null AND true").IsNull());
  EXPECT_FALSE(EvalExpr("null AND false").AsBool());
  EXPECT_TRUE(EvalExpr("null OR true").AsBool());
  EXPECT_TRUE(EvalExpr("null OR false").IsNull());
  EXPECT_TRUE(EvalExpr("NOT null").IsNull());
  EXPECT_TRUE(EvalExpr("missing = 1").IsNull());
}

TEST_F(EvaluatorTest, Comparisons) {
  EXPECT_TRUE(EvalExpr("2 < 3").AsBool());
  EXPECT_TRUE(EvalExpr("2 = 2.0").AsBool());
  EXPECT_TRUE(EvalExpr("\"abc\" != \"abd\"").AsBool());
  EXPECT_FALSE(EvalExpr("1 = \"1\"").AsBool());
}

TEST_F(EvaluatorTest, CaseForms) {
  EXPECT_EQ(EvalExpr("CASE 2 WHEN 1 THEN \"a\" WHEN 2 THEN \"b\" ELSE \"c\" END").AsString(),
            "b");
  EXPECT_EQ(EvalExpr("CASE WHEN false THEN 1 ELSE 2 END").AsInt(), 2);
  EXPECT_TRUE(EvalExpr("CASE 9 WHEN 1 THEN 1 END").IsNull());
  EXPECT_EQ(EvalExpr("CASE 1 = 1 WHEN true THEN \"Red\" ELSE \"Green\" END").AsString(),
            "Red");
}

TEST_F(EvaluatorTest, FieldAndIndexAccess) {
  EXPECT_EQ(EvalExpr("{\"a\": {\"b\": 5}}.a.b").AsInt(), 5);
  EXPECT_TRUE(EvalExpr("{\"a\": 1}.zzz").IsMissing());
  EXPECT_EQ(EvalExpr("[10, 20, 30][1]").AsInt(), 20);
  EXPECT_TRUE(EvalExpr("[10][5]").IsMissing());
  EXPECT_TRUE(EvalExpr("5 . foo").IsMissing());
}

TEST_F(EvaluatorTest, BuiltinFunctions) {
  EXPECT_TRUE(EvalExpr("contains(\"hello world\", \"world\")").AsBool());
  EXPECT_EQ(EvalExpr("edit_distance(\"kitten\", \"sitting\")").AsInt(), 3);
  EXPECT_TRUE(EvalExpr(
                  "spatial_intersect(create_point(1.0, 1.0), "
                  "create_circle(create_point(0.0, 0.0), 2.0))")
                  .AsBool());
  EXPECT_EQ(EvalExpr("lower(\"ABC\")").AsString(), "abc");
  EXPECT_TRUE(EvalExpr("is_missing(missing)").AsBool());
  EXPECT_EQ(EvalExprStatus("no_such_fn(1)").code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, DatetimeArithmetic) {
  Value v = EvalExpr("datetime(\"2018-11-15T00:00:00Z\") + duration(\"P2M\")");
  ASSERT_TRUE(v.IsDateTime());
  EXPECT_TRUE(
      EvalExpr("datetime(\"2019-01-01\") < datetime(\"2018-11-15\") + duration(\"P2M\")")
          .AsBool());
}

TEST_F(EvaluatorTest, UnboundVariableIsError) {
  EXPECT_EQ(EvalExprStatus("nope").code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, SelectValueScan) {
  adm::Array rows = Query("SELECT VALUE n.v FROM Nums n;");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].AsInt(), 10);
}

TEST_F(EvaluatorTest, WhereFilters) {
  adm::Array rows = Query("SELECT VALUE n.id FROM Nums n WHERE n.v > 25;");
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(EvaluatorTest, ProjectionNamingRules) {
  adm::Array rows = Query("SELECT n.v, n.v * 2 AS twice, n.v + 1 FROM Nums n LIMIT 1;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetField("v")->AsInt(), 10);
  EXPECT_EQ(rows[0].GetField("twice")->AsInt(), 20);
  EXPECT_EQ(rows[0].GetField("$3")->AsInt(), 11);
}

TEST_F(EvaluatorTest, StarSpread) {
  adm::Array rows = Query("SELECT n.*, n.v + 1 AS next FROM Nums n WHERE n.id = 1;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetField("id")->AsInt(), 1);
  EXPECT_EQ(rows[0].GetField("next")->AsInt(), 11);
}

TEST_F(EvaluatorTest, OrderByAndLimit) {
  adm::Array rows = Query("SELECT VALUE n.v FROM Nums n ORDER BY n.v DESC LIMIT 2;");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].AsInt(), 50);
  EXPECT_EQ(rows[1].AsInt(), 40);
}

TEST_F(EvaluatorTest, GroupByWithAggregates) {
  adm::Array rows =
      Query("SELECT n.g AS g, count(*) AS c, sum(n.v) AS s FROM Nums n GROUP BY n.g "
            "ORDER BY n.g;");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].GetField("g")->AsString(), "a");
  EXPECT_EQ(rows[0].GetField("c")->AsInt(), 3);
  EXPECT_EQ(rows[0].GetField("s")->AsInt(), 90);
  EXPECT_EQ(rows[1].GetField("c")->AsInt(), 2);
}

TEST_F(EvaluatorTest, GroupKeyStructuralMatchInSelect) {
  // SELECT n.g (no alias) must resolve to the grouping key.
  adm::Array rows = Query("SELECT n.g, count(*) AS c FROM Nums n GROUP BY n.g ORDER BY n.g;");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].GetField("g")->AsString(), "a");
}

TEST_F(EvaluatorTest, GroupByAliasBinding) {
  adm::Array rows =
      Query("SELECT grp, count(*) AS c FROM Nums n GROUP BY n.g AS grp ORDER BY grp;");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].GetField("grp")->AsString(), "b");
}

TEST_F(EvaluatorTest, ImplicitAggregationWithoutGroupBy) {
  adm::Array rows = Query("SELECT sum(n.v) AS total, count(*) AS c FROM Nums n;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetField("total")->AsInt(), 150);
  EXPECT_EQ(rows[0].GetField("c")->AsInt(), 5);
}

TEST_F(EvaluatorTest, ImplicitAggregationOverEmptyInput) {
  adm::Array rows = Query("SELECT count(*) AS c FROM Nums n WHERE n.v > 999;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetField("c")->AsInt(), 0);
}

TEST_F(EvaluatorTest, OrderByAggregate) {
  adm::Array rows =
      Query("SELECT VALUE n.g FROM Nums n GROUP BY n.g ORDER BY count(n) DESC LIMIT 1;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsString(), "a");
}

TEST_F(EvaluatorTest, HavingFiltersGroups) {
  adm::Array rows =
      Query("SELECT VALUE n.g FROM Nums n GROUP BY n.g HAVING count(*) > 2;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsString(), "a");
}

TEST_F(EvaluatorTest, JoinTwoDatasets) {
  accessor_.Add("Pairs", {J(R"({"g":"a","label":"alpha"})"), J(R"({"g":"b","label":"beta"})")});
  adm::Array rows = Query(
      "SELECT n.id AS id, p.label AS label FROM Nums n, Pairs p WHERE n.g = p.g "
      "ORDER BY n.id;");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].GetField("label")->AsString(), "alpha");
  EXPECT_EQ(rows[1].GetField("label")->AsString(), "beta");
}

TEST_F(EvaluatorTest, ExistsAndIn) {
  EXPECT_TRUE(
      EvalExpr("EXISTS(SELECT w FROM Words w WHERE w.country = \"US\")").AsBool());
  EXPECT_FALSE(
      EvalExpr("EXISTS(SELECT w FROM Words w WHERE w.country = \"XX\")").AsBool());
  EXPECT_TRUE(EvalExpr("\"FR\" IN (SELECT VALUE w.country FROM Words w)").AsBool());
  EXPECT_TRUE(EvalExpr("2 IN [1, 2, 3]").AsBool());
  EXPECT_FALSE(EvalExpr("9 IN [1, 2, 3]").AsBool());
}

TEST_F(EvaluatorTest, CorrelatedSubquery) {
  adm::Array rows = Query(
      "SELECT VALUE (SELECT VALUE w.word FROM Words w WHERE w.country = n.g) "
      "FROM Nums n WHERE n.id = 1;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsArray().size(), 0u);  // "a" is no country
}

TEST_F(EvaluatorTest, FromBoundVariable) {
  adm::Array rows = Query(
      "LET batch = ([{\"x\": 1}, {\"x\": 2}]) SELECT VALUE b.x FROM batch b;");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].AsInt(), 2);
}

TEST_F(EvaluatorTest, FeedDatasourceIsRejected) {
  auto s = ParseStatement("SELECT VALUE t FROM FEED Tweets t;");
  ASSERT_TRUE(s.ok());
  Evaluator ev(ctx_);
  Env env;
  auto r = ev.EvalQuery(*s->query, &env);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(EvaluatorTest, SqlppUdfCallReturnsCollection) {
  auto fn = ParseStatement(
      "CREATE FUNCTION flag(t) { LET f = CASE t.v > 25 WHEN true THEN \"hi\" ELSE "
      "\"lo\" END SELECT t.*, f };");
  ASSERT_TRUE(fn.ok());
  SqlppFunctionDef def;
  def.name = "flag";
  def.params = fn->create_function.params;
  def.body = std::shared_ptr<const SelectStatement>(std::move(fn->create_function.body));
  resolver_.Register(std::move(def));
  adm::Array rows = Query("SELECT VALUE flag(n)[0].f FROM Nums n ORDER BY n.id;");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].AsString(), "lo");
  EXPECT_EQ(rows[4].AsString(), "hi");
}

TEST_F(EvaluatorTest, MissingProjectionFieldOmitted) {
  adm::Array rows = Query("SELECT n.nope AS gone, n.id AS id FROM Nums n LIMIT 1;");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetField("gone"), nullptr);
  EXPECT_NE(rows[0].GetField("id"), nullptr);
}

TEST_F(EvaluatorTest, LimitWithoutOrderStopsEarly) {
  Evaluator ev(ctx_);
  Env env;
  auto s = ParseStatement("SELECT VALUE n.id FROM Nums n LIMIT 2;");
  ASSERT_TRUE(s.ok());
  auto r = ev.EvalQuery(*s->query, &env);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  // Early exit: not all 5 records were scanned.
  EXPECT_LT(ev.stats().tuples_scanned, 5u);
}

}  // namespace
}  // namespace idea::sqlpp
