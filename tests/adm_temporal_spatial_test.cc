#include <gtest/gtest.h>

#include "adm/spatial.h"
#include "adm/temporal.h"
#include "common/rng.h"

namespace idea::adm {
namespace {

TEST(DateTimeTest, ParsePrintsBack) {
  auto dt = ParseDateTime("2019-08-23T10:11:12Z");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(PrintDateTime(*dt), "2019-08-23T10:11:12.000Z");
}

TEST(DateTimeTest, DateOnly) {
  auto dt = ParseDateTime("2019-01-01");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(PrintDateTime(*dt), "2019-01-01T00:00:00.000Z");
}

TEST(DateTimeTest, FractionalSeconds) {
  auto dt = ParseDateTime("2019-01-01T00:00:00.250Z");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->epoch_ms % 1000, 250);
}

TEST(DateTimeTest, EpochZero) {
  auto dt = ParseDateTime("1970-01-01T00:00:00Z");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->epoch_ms, 0);
}

TEST(DateTimeTest, PreEpochDates) {
  auto dt = ParseDateTime("1969-12-31T23:59:59Z");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->epoch_ms, -1000);
  EXPECT_EQ(PrintDateTime(*dt), "1969-12-31T23:59:59.000Z");
}

class DateTimeBadInput : public ::testing::TestWithParam<const char*> {};

TEST_P(DateTimeBadInput, Rejected) {
  EXPECT_FALSE(ParseDateTime(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, DateTimeBadInput,
                         ::testing::Values("", "2019", "2019-13-01", "2019-02-30",
                                           "2019-01-01T25:00:00", "abc",
                                           "2019-01-01T00:00:00Zjunk"));

TEST(DateTimeTest, RoundTripProperty) {
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    DateTime dt{rng.NextInRange(-4102444800000ll, 4102444800000ll)};  // ±2100
    auto back = ParseDateTime(PrintDateTime(dt));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->epoch_ms, dt.epoch_ms);
  }
}

TEST(DurationTest, ParseForms) {
  EXPECT_EQ(ParseDuration("P2M")->months, 2);
  EXPECT_EQ(ParseDuration("P1Y2M")->months, 14);
  EXPECT_EQ(ParseDuration("P3D")->millis, 3ll * 86400000);
  EXPECT_EQ(ParseDuration("PT1H30M")->millis, 90ll * 60000);
  EXPECT_EQ(ParseDuration("PT0.5S")->millis, 500);
  EXPECT_EQ(ParseDuration("P1W")->millis, 7ll * 86400000);
  EXPECT_FALSE(ParseDuration("2M").ok());
  EXPECT_FALSE(ParseDuration("P").ok());
  EXPECT_FALSE(ParseDuration("P2X").ok());
}

TEST(DurationTest, PrintNormalizes) {
  EXPECT_EQ(PrintDuration(Duration{2, 0}), "P2M");
  EXPECT_EQ(PrintDuration(Duration{14, 0}), "P1Y2M");
  EXPECT_EQ(PrintDuration(Duration{0, 90ll * 60000}), "PT1H30M");
  EXPECT_EQ(PrintDuration(Duration{0, 0}), "PT0S");
}

TEST(AddDurationTest, TwoMonthWindow) {
  // The Worrisome Tweets predicate: attack_datetime + P2M.
  DateTime nov = *ParseDateTime("2018-11-15T00:00:00Z");
  DateTime plus2m = AddDuration(nov, *ParseDuration("P2M"));
  EXPECT_EQ(PrintDateTime(plus2m), "2019-01-15T00:00:00.000Z");
}

TEST(AddDurationTest, ClampsDayIntoTargetMonth) {
  DateTime jan31 = *ParseDateTime("2019-01-31T12:00:00Z");
  EXPECT_EQ(PrintDateTime(AddDuration(jan31, *ParseDuration("P1M"))),
            "2019-02-28T12:00:00.000Z");
  DateTime leap = *ParseDateTime("2020-01-31T00:00:00Z");
  EXPECT_EQ(PrintDateTime(AddDuration(leap, *ParseDuration("P1M"))),
            "2020-02-29T00:00:00.000Z");
}

TEST(AddDurationTest, NegativeMonths) {
  DateTime mar = *ParseDateTime("2019-03-31T00:00:00Z");
  EXPECT_EQ(PrintDateTime(AddDuration(mar, Duration{-1, 0})),
            "2019-02-28T00:00:00.000Z");
}

TEST(AddDurationTest, MillisOnly) {
  DateTime t = *ParseDateTime("2019-01-01T00:00:00Z");
  DateTime t2 = AddDuration(t, Duration{0, 3600000});
  EXPECT_EQ(PrintDateTime(t2), "2019-01-01T01:00:00.000Z");
}

// --- spatial ---------------------------------------------------------------

TEST(SpatialTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

TEST(SpatialTest, RectPredicates) {
  Rectangle r{{0, 0}, {10, 5}};
  EXPECT_TRUE(RectContainsPoint(r, {5, 2}));
  EXPECT_TRUE(RectContainsPoint(r, {0, 0}));  // boundary inclusive
  EXPECT_FALSE(RectContainsPoint(r, {11, 2}));
  EXPECT_TRUE(RectIntersectsRect(r, {{9, 4}, {20, 20}}));
  EXPECT_FALSE(RectIntersectsRect(r, {{11, 6}, {12, 7}}));
}

TEST(SpatialTest, CirclePredicates) {
  Circle c{{0, 0}, 2};
  EXPECT_TRUE(CircleContainsPoint(c, {1, 1}));
  EXPECT_FALSE(CircleContainsPoint(c, {2, 2}));
  EXPECT_TRUE(CircleIntersectsRect(c, {{1, 1}, {5, 5}}));
  EXPECT_FALSE(CircleIntersectsRect(c, {{3, 3}, {5, 5}}));
  EXPECT_TRUE(CircleIntersectsCircle(c, {{3, 0}, 1}));
  EXPECT_FALSE(CircleIntersectsCircle(c, {{5, 0}, 1}));
}

TEST(SpatialTest, SpatialIntersectDispatch) {
  Value pt = Value::MakePoint({1, 1});
  Value circ = Value::MakeCircle({{0, 0}, 2});
  Value rect = Value::MakeRectangle({{0, 0}, {2, 2}});
  EXPECT_TRUE(SpatialIntersect(pt, circ));
  EXPECT_TRUE(SpatialIntersect(circ, pt));
  EXPECT_TRUE(SpatialIntersect(pt, rect));
  EXPECT_TRUE(SpatialIntersect(rect, circ));
  EXPECT_FALSE(SpatialIntersect(Value::MakeNull(), circ));
  EXPECT_FALSE(SpatialIntersect(Value::MakeInt(1), circ));
  EXPECT_TRUE(SpatialIntersect(pt, pt));
  EXPECT_FALSE(SpatialIntersect(pt, Value::MakePoint({1, 2})));
}

TEST(SpatialTest, MbrOfGeometries) {
  Rectangle mbr;
  ASSERT_TRUE(ValueMbr(Value::MakePoint({3, 4}), &mbr));
  EXPECT_EQ(mbr.lo, (Point{3, 4}));
  ASSERT_TRUE(ValueMbr(Value::MakeCircle({{0, 0}, 2}), &mbr));
  EXPECT_EQ(mbr.lo, (Point{-2, -2}));
  EXPECT_EQ(mbr.hi, (Point{2, 2}));
  EXPECT_FALSE(ValueMbr(Value::MakeInt(1), &mbr));
}

TEST(SpatialTest, MbrUnionAndArea) {
  Rectangle u = MbrUnion({{0, 0}, {1, 1}}, {{2, -1}, {3, 0.5}});
  EXPECT_EQ(u.lo, (Point{0, -1}));
  EXPECT_EQ(u.hi, (Point{3, 1}));
  EXPECT_DOUBLE_EQ(MbrArea({{0, 0}, {4, 2}}), 8.0);
}

TEST(SpatialTest, CircleMbrConservativeProperty) {
  // Everything inside the circle lies inside its MBR.
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    Circle c{{rng.NextDouble() * 20 - 10, rng.NextDouble() * 20 - 10},
             rng.NextDouble() * 5};
    Rectangle mbr;
    ASSERT_TRUE(ValueMbr(Value::MakeCircle(c), &mbr));
    Point p{rng.NextDouble() * 20 - 10, rng.NextDouble() * 20 - 10};
    if (CircleContainsPoint(c, p)) {
      EXPECT_TRUE(RectContainsPoint(mbr, p));
    }
  }
}

}  // namespace
}  // namespace idea::adm
