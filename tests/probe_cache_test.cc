// Delta-aware index probe cache: memoized nested-loop probes must be
// bit-identical to live ones, and a reference-dataset mutation must drop the
// memo immediately (mid-job update visibility, paper §7.3).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adm/json.h"
#include "adm/serde.h"
#include "sqlpp/enrichment_plan.h"
#include "sqlpp/parser.h"
#include "storage/catalog.h"
#include "workload/reference_data.h"
#include "workload/usecases.h"

namespace idea::sqlpp {
namespace {

using adm::Value;

class EmptyResolver : public FunctionResolver {
 public:
  const SqlppFunctionDef* FindSqlppFunction(const std::string&) const override {
    return nullptr;
  }
  NativeFunctionHandle* FindNativeFunction(const std::string&) const override {
    return nullptr;
  }
};

std::shared_ptr<const SqlppFunctionDef> ParseFn(const std::string& ddl) {
  auto s = ParseStatement(ddl);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  auto def = std::make_shared<SqlppFunctionDef>();
  def->name = s->create_function.name;
  def->params = s->create_function.params;
  def->body = std::shared_ptr<const SelectStatement>(std::move(s->create_function.body));
  return def;
}

class ProbeCacheTest : public ::testing::Test {
 protected:
  ProbeCacheTest() : accessor_(&catalog_, /*cache=*/false) {}

  void ApplyDdl(const std::string& script) {
    auto stmts = ParseScript(script);
    ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
    for (const auto& stmt : *stmts) {
      if (stmt.kind == StatementKind::kCreateType) {
        std::vector<adm::FieldSpec> fields;
        for (const auto& f : stmt.create_type.fields) {
          auto ft = adm::FieldTypeFromName(f.type_name);
          ASSERT_TRUE(ft.ok());
          fields.push_back({f.name, *ft, f.optional});
        }
        (void)catalog_.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
      } else if (stmt.kind == StatementKind::kCreateDataset) {
        ASSERT_TRUE(catalog_
                        .CreateDataset(stmt.create_dataset.name,
                                       stmt.create_dataset.type_name,
                                       stmt.create_dataset.primary_key)
                        .ok());
      } else if (stmt.kind == StatementKind::kCreateIndex) {
        auto ds = catalog_.FindDataset(stmt.create_index.dataset);
        ASSERT_NE(ds, nullptr);
        ASSERT_TRUE(ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                                    stmt.create_index.index_type)
                        .ok());
      }
    }
  }

  /// Keyed reference table with a B-tree index on `k`; several rows per key.
  void SetupBtreeRef() {
    ApplyDdl(R"(
CREATE TYPE ProbeRefType AS OPEN { rid: int, k: int, payload: string };
CREATE DATASET ProbeRef(ProbeRefType) PRIMARY KEY rid;
CREATE INDEX probeRefK ON ProbeRef(k);
)");
    auto ds = catalog_.FindDataset("ProbeRef");
    ASSERT_NE(ds, nullptr);
    for (int j = 0; j < 200; ++j) {
      Value rec = adm::ParseJson("{\"rid\": " + std::to_string(j) +
                                 ", \"k\": " + std::to_string(j % 20) +
                                 ", \"payload\": \"p" + std::to_string(j) + "\"}")
                      .value();
      ASSERT_TRUE(ds->Upsert(std::move(rec)).ok());
    }
  }

  static Value Tweet(int id, int k) {
    return adm::ParseJson("{\"id\": " + std::to_string(id) +
                          ", \"k\": " + std::to_string(k) + "}")
        .value();
  }

  storage::Catalog catalog_;
  storage::CatalogAccessor accessor_;
  EmptyResolver resolver_;
};

constexpr char kProbeFnDdl[] = R"(
CREATE FUNCTION probeFn(t) {
  LET matches = (SELECT VALUE r.payload FROM ProbeRef r WHERE r.k = t.k)
  SELECT t.*, matches
};
)";

TEST_F(ProbeCacheTest, BtreeMemoIsBitIdenticalToLiveProbes) {
  SetupBtreeRef();
  auto def = ParseFn(kProbeFnDdl);
  auto cached = EnrichmentPlan::Compile(def, &accessor_, &resolver_);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ASSERT_EQ((*cached)->choices()[0].kind, AccessPathKind::kIndexNestedLoopEq)
      << (*cached)->Explain();
  PlanConfig off;
  off.enable_probe_cache = false;
  auto live = EnrichmentPlan::Compile(def, &accessor_, &resolver_, off);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*cached)->Initialize().ok());
  ASSERT_TRUE((*live)->Initialize().ok());

  // Heavy key repetition: every key probed several times.
  for (int i = 0; i < 100; ++i) {
    Value t = Tweet(i, i % 10);
    auto a = (*cached)->EnrichOne(t);
    auto b = (*live)->EnrichOne(t);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(adm::SerializeToBytes(*a), adm::SerializeToBytes(*b))
        << "record " << i << "\ncached: " << a->ToString()
        << "\nlive:   " << b->ToString();
  }
  EXPECT_GT((*cached)->stats().probe_cache_hits, 0u);
  EXPECT_EQ((*cached)->stats().probe_cache_misses, 10u);
  EXPECT_EQ((*live)->stats().probe_cache_hits, 0u);
  // Cache hits skip the index entirely.
  EXPECT_LT((*cached)->stats().index_probes, (*live)->stats().index_probes);
}

TEST_F(ProbeCacheTest, MutationDropsMemoMidJob) {
  SetupBtreeRef();
  auto def = ParseFn(kProbeFnDdl);
  auto plan = EnrichmentPlan::Compile(def, &accessor_, &resolver_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE((*plan)->Initialize().ok());

  Value t = Tweet(1, 3);
  auto before = (*plan)->EnrichOne(t);
  ASSERT_TRUE(before.ok());
  // Probe the same key again: answered from the memo.
  ASSERT_TRUE((*plan)->EnrichOne(t).ok());
  EXPECT_GT((*plan)->stats().probe_cache_hits, 0u);

  // Live update without re-Initialize: add another row under key 3. The
  // sequence moves, the memo drops, and the next probe sees the new row.
  auto ds = catalog_.FindDataset("ProbeRef");
  ASSERT_TRUE(ds->Upsert(adm::ParseJson(
                             R"({"rid": 900, "k": 3, "payload": "fresh"})")
                             .value())
                  .ok());
  auto after = (*plan)->EnrichOne(t);
  ASSERT_TRUE(after.ok());
  size_t n_before = before->GetField("matches")->AsArray().size();
  EXPECT_EQ(after->GetField("matches")->AsArray().size(), n_before + 1);
}

TEST_F(ProbeCacheTest, SpatialMemoIsBitIdenticalToLiveProbes) {
  const auto& uc = workload::GetUseCase(workload::UseCaseId::kNearbyMonuments);
  ApplyDdl(uc.ddl);
  workload::RefSizes sizes = workload::SimulatorScaleSizes().Scaled(0.2);
  ASSERT_TRUE(workload::LoadUseCaseData(&catalog_, uc, sizes, 200, 1).ok());

  auto def = ParseFn(uc.function_ddl);
  auto cached = EnrichmentPlan::Compile(def, &accessor_, &resolver_);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ((*cached)->choices()[0].kind, AccessPathKind::kIndexNestedLoopSpatial);
  PlanConfig off;
  off.enable_probe_cache = false;
  auto live = EnrichmentPlan::Compile(def, &accessor_, &resolver_, off);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*cached)->Initialize().ok());
  ASSERT_TRUE((*live)->Initialize().ok());

  // A handful of hot locations, probed repeatedly (zipf-like reuse).
  for (int i = 0; i < 60; ++i) {
    double lat = 10.0 * (i % 5);
    double lon = 15.0 * (i % 4);
    Value t = adm::ParseJson("{\"id\": " + std::to_string(i) +
                             ", \"text\": \"x\", \"latitude\": " + std::to_string(lat) +
                             ", \"longitude\": " + std::to_string(lon) + "}")
                  .value();
    auto a = (*cached)->EnrichOne(t);
    auto b = (*live)->EnrichOne(t);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(adm::SerializeToBytes(*a), adm::SerializeToBytes(*b));
  }
  EXPECT_GT((*cached)->stats().probe_cache_hits, 0u);
  EXPECT_EQ((*live)->stats().probe_cache_hits, 0u);
}

}  // namespace
}  // namespace idea::sqlpp
