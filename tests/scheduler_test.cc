// TaskScheduler / TaskGroup / Turnstile unit tests, plus end-to-end tests of
// pipelined computing invocations (FeedConfig::pipeline_depth) on the
// per-node worker pools.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "adm/json.h"
#include "feed/active_feed_manager.h"
#include "obs/metrics.h"
#include "runtime/task_scheduler.h"
#include "storage/catalog.h"

namespace idea::runtime {
namespace {

// ---------------------------------------------------------------------------
// TaskScheduler / TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskSchedulerTest, SequentialTasksReuseOneWorker) {
  TaskScheduler pool("t-reuse");
  for (int i = 0; i < 10; ++i) {
    TaskGroup group;
    ASSERT_TRUE(group.Launch(&pool, []() -> Status { return Status::OK(); }).ok());
    ASSERT_TRUE(group.Wait().ok());
    // Give the worker time to park; a completing worker only counts as idle
    // once it re-checks the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Tasks reuse the parked worker instead of spawning one each (<= 2 leaves
  // room for one completion/park race, not one thread per task).
  EXPECT_LE(pool.worker_count(), 2u);
  EXPECT_EQ(pool.Stats().tasks_run, 10u);
}

TEST(TaskSchedulerTest, PoolGrowsWhenAllWorkersBlock) {
  TaskScheduler pool("t-grow");
  constexpr size_t kTasks = 4;
  std::mutex mu;
  std::condition_variable cv;
  size_t arrived = 0;
  // Each task blocks until all have started: this can only complete if the
  // pool grew to kTasks workers (the growth invariant).
  TaskGroup group;
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(group
                    .Launch(&pool,
                            [&]() -> Status {
                              std::unique_lock<std::mutex> lock(mu);
                              if (++arrived == kTasks) cv.notify_all();
                              cv.wait(lock, [&] { return arrived == kTasks; });
                              return Status::OK();
                            })
                    .ok());
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_GE(pool.worker_count(), kTasks);
}

TEST(TaskSchedulerTest, InterdependentBlockingTasksDoNotDeadlock) {
  // A producer/consumer pair wired by a tiny queue, submitted to the same
  // pool: the consumer may be queued behind the blocked producer, so the
  // pool must grow a worker for it.
  TaskScheduler pool("t-pipe");
  std::mutex mu;
  std::condition_variable cv;
  int handoffs = 0;  // producer increments, consumer acknowledges
  bool token = false;
  TaskGroup group;
  ASSERT_TRUE(group
                  .Launch(&pool,
                          [&]() -> Status {
                            for (int i = 0; i < 100; ++i) {
                              std::unique_lock<std::mutex> lock(mu);
                              cv.wait(lock, [&] { return !token; });
                              token = true;
                              ++handoffs;
                              cv.notify_all();
                            }
                            return Status::OK();
                          })
                  .ok());
  ASSERT_TRUE(group
                  .Launch(&pool,
                          [&]() -> Status {
                            for (int i = 0; i < 100; ++i) {
                              std::unique_lock<std::mutex> lock(mu);
                              cv.wait(lock, [&] { return token; });
                              token = false;
                              cv.notify_all();
                            }
                            return Status::OK();
                          })
                  .ok());
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(handoffs, 100);
}

TEST(TaskGroupTest, WaitReturnsFirstErrorAndCountsFailures) {
  TaskScheduler pool("t-err");
  TaskGroup group;
  ASSERT_TRUE(group.Launch(&pool, []() -> Status { return Status::OK(); }).ok());
  ASSERT_TRUE(group
                  .Launch(&pool,
                          []() -> Status { return Status::Internal("boom"); })
                  .ok());
  Status st = group.Wait();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("boom"), std::string::npos);
  EXPECT_EQ(pool.Stats().tasks_failed, 1u);
  EXPECT_EQ(pool.Stats().tasks_run, 2u);  // failed tasks still ran
}

TEST(TaskGroupTest, CancelOnFirstErrorSkipsQueuedTasks) {
  // One worker, FIFO queue: the failing task runs first, so the flag task is
  // still queued when the group cancels and must be skipped.
  TaskScheduler pool("t-cancel", /*max_workers=*/1);
  std::atomic<bool> ran{false};
  TaskGroup group(/*cancel_on_first_error=*/true);
  ASSERT_TRUE(group
                  .Launch(&pool,
                          []() -> Status { return Status::Internal("first"); })
                  .ok());
  ASSERT_TRUE(group
                  .Launch(&pool,
                          [&]() -> Status {
                            ran.store(true);
                            return Status::OK();
                          })
                  .ok());
  EXPECT_FALSE(group.Wait().ok());
  EXPECT_TRUE(group.cancelled());
  EXPECT_FALSE(ran.load());
}

TEST(TaskSchedulerTest, StopRejectsNewSubmissions) {
  TaskScheduler pool("t-stop");
  pool.Stop();
  EXPECT_FALSE(pool.Submit([] {}).ok());
  TaskGroup group;
  EXPECT_FALSE(group.Launch(&pool, []() -> Status { return Status::OK(); }).ok());
  EXPECT_TRUE(group.Wait().ok());  // nothing pending
}

TEST(TaskSchedulerTest, StopDrainsQueuedTasks) {
  TaskScheduler pool("t-drain", /*max_workers=*/1);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                      done.fetch_add(1);
                    })
                    .ok());
  }
  pool.Stop();
  EXPECT_EQ(done.load(), 10);
}

// ---------------------------------------------------------------------------
// Turnstile
// ---------------------------------------------------------------------------

TEST(TurnstileTest, TicketsPassInOrder) {
  Turnstile line;
  std::vector<int> order;
  std::mutex mu;
  TaskScheduler pool("t-line");
  TaskGroup group;
  // Launch in reverse ticket order; the line must serialize them 0,1,2,3.
  for (int t = 3; t >= 0; --t) {
    ASSERT_TRUE(group
                    .Launch(&pool,
                            [&, t]() -> Status {
                              TurnstileTurn turn(&line, static_cast<uint64_t>(t));
                              turn.Acquire();
                              std::lock_guard<std::mutex> lock(mu);
                              order.push_back(t);
                              return Status::OK();  // Release via destructor
                            })
                    .ok());
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TurnstileTest, ErrorPathStillAdvancesLine) {
  Turnstile line;
  {
    TurnstileTurn turn(&line, 0);
    // Simulated error return: Acquire never called, scope exits.
  }
  EXPECT_EQ(line.current(), 1u);
  // Ticket 1 must now pass immediately.
  TurnstileTurn turn(&line, 1);
  turn.Acquire();
  turn.Release();
  EXPECT_EQ(line.current(), 2u);
}

}  // namespace
}  // namespace idea::runtime

// ---------------------------------------------------------------------------
// Pipelined computing invocations (pipeline_depth) end-to-end
// ---------------------------------------------------------------------------

namespace idea::feed {
namespace {

using adm::Value;

/// Native pass-through UDF that sleeps ~1ms per batch record quota, making
/// invocation overlap observable at pipeline_depth > 1.
class SlowIdentityUdf : public NativeUdf {
 public:
  Result<Value> Evaluate(sqlpp::ArgView args) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return args[0];
  }
};

class PipelinedFeedTest : public ::testing::Test {
 protected:
  PipelinedFeedTest() {
    cluster::ClusterConfig cc;
    cc.nodes = 2;
    cc.mode = cluster::ExecutionMode::kThreads;
    cluster_ = std::make_unique<cluster::Cluster>(cc);
    afm_ = std::make_unique<ActiveFeedManager>(cluster_.get(), &catalog_, &udfs_);
    EXPECT_TRUE(catalog_
                    .CreateDatatype(adm::Datatype(
                        "KVType", {{"id", adm::FieldType::kInt64, false},
                                   {"v", adm::FieldType::kInt64, false}}))
                    .ok());
    EXPECT_TRUE(udfs_
                    .RegisterNative(
                        "testlib#slowId",
                        [] { return std::make_unique<SlowIdentityUdf>(); },
                        /*stateful=*/false)
                    .ok());
  }

  /// Records keyed id = i % 4 with increasing version v = i: position parity
  /// pins each key to one node, so per-node ship ordering decides the final
  /// version.
  static std::shared_ptr<std::vector<std::string>> VersionedRecords(size_t n) {
    auto records = std::make_shared<std::vector<std::string>>();
    for (size_t i = 0; i < n; ++i) {
      records->push_back("{\"id\": " + std::to_string(i % 4) +
                         ", \"v\": " + std::to_string(i) + "}");
    }
    return records;
  }

  Result<FeedRuntimeStats> RunFeed(const std::string& name, const std::string& dataset,
                                   size_t pipeline_depth, size_t records,
                                   const std::string& udf = "") {
    if (catalog_.FindDataset(dataset) == nullptr) {
      IDEA_RETURN_NOT_OK(catalog_.CreateDataset(dataset, "KVType", "id"));
    }
    ActiveFeedManager::StartArgs args;
    args.config.name = name;
    args.config.type_name = "KVType";
    args.config.batch_size = 8;  // many invocations
    args.config.pipeline_depth = pipeline_depth;
    args.connection.dataset = dataset;
    args.connection.apply_function = udf;
    args.adapter_factory = MakeVectorAdapterFactory(VersionedRecords(records));
    IDEA_RETURN_NOT_OK(afm_->StartFeed(std::move(args)));
    return afm_->WaitForFeedStats(name);
  }

  storage::Catalog catalog_;
  UdfRegistry udfs_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<ActiveFeedManager> afm_;
};

TEST_F(PipelinedFeedTest, DepthTwoOverlapsInvocations) {
  auto stats = RunFeed("K2", "K2Data", /*pipeline_depth=*/2, /*records=*/400,
                       "testlib#slowId");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 400u);
  EXPECT_EQ(catalog_.FindDataset("K2Data")->LiveRecordCount(), 4u);
  // Both lanes were mid-invocation at once: the in-flight gauge reached the
  // configured depth.
  obs::Gauge* inflight =
      obs::MetricsRegistry::Default().GetGauge("idea.feed.K2.inflight_invocations");
  EXPECT_EQ(inflight->value(), 0);  // all invocations finished
  EXPECT_EQ(inflight->high_watermark(), 2);
}

TEST_F(PipelinedFeedTest, DepthOneStaysSequential) {
  auto stats = RunFeed("K1", "K1Data", /*pipeline_depth=*/1, /*records=*/200,
                       "testlib#slowId");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 200u);
  obs::Gauge* inflight =
      obs::MetricsRegistry::Default().GetGauge("idea.feed.K1.inflight_invocations");
  EXPECT_EQ(inflight->high_watermark(), 1);
}

TEST_F(PipelinedFeedTest, PipelinedShipsStayInInvocationOrder) {
  // Overlapped invocations upsert versioned records; the per-node ship lines
  // must deliver them in invocation order, so every key ends at its maximum
  // version exactly as at depth 1.
  constexpr size_t kRecords = 400;
  auto stats = RunFeed("Ord", "OrdData", /*pipeline_depth=*/3, kRecords);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, kRecords);
  auto snap = catalog_.FindDataset("OrdData")->Scan();
  ASSERT_EQ(snap->size(), 4u);
  for (const auto& rec : *snap) {
    int64_t id = rec.GetField("id")->AsInt();
    int64_t v = rec.GetField("v")->AsInt();
    // Key k's last version is the largest i < kRecords with i % 4 == k.
    EXPECT_EQ(v, static_cast<int64_t>(kRecords - 4 + static_cast<size_t>(id)))
        << "key " << id;
  }
}

TEST_F(PipelinedFeedTest, DepthOneAndDepthTwoProduceIdenticalContents) {
  ASSERT_TRUE(RunFeed("P1", "P1Data", 1, 240).ok());
  ASSERT_TRUE(RunFeed("P2", "P2Data", 2, 240).ok());
  auto a = catalog_.FindDataset("P1Data")->Scan();
  auto b = catalog_.FindDataset("P2Data")->Scan();
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
  }
}

}  // namespace
}  // namespace idea::feed
