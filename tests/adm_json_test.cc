#include <gtest/gtest.h>

#include "adm/datatype.h"
#include "adm/json.h"
#include "common/rng.h"

namespace idea::adm {
namespace {

Result<Value> P(const std::string& s) { return ParseJson(s); }

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(P("42")->AsInt(), 42);
  EXPECT_EQ(P("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(P("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(P("1e3")->AsDouble(), 1000.0);
  EXPECT_TRUE(P("true")->AsBool());
  EXPECT_FALSE(P("false")->AsBool());
  EXPECT_TRUE(P("null")->IsNull());
  EXPECT_EQ(P("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, IntegerOverflowBecomesDouble) {
  auto v = P("99999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsDouble());
}

TEST(JsonParseTest, NestedStructure) {
  auto v = P(R"({"id": 1, "tags": ["a", "b"], "geo": {"lat": 1.5}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetField("id")->AsInt(), 1);
  EXPECT_EQ(v->GetField("tags")->AsArray()[1].AsString(), "b");
  EXPECT_DOUBLE_EQ(v->GetField("geo")->GetField("lat")->AsDouble(), 1.5);
}

TEST(JsonParseTest, Escapes) {
  EXPECT_EQ(P(R"("a\"b\\c\nd\te")")->AsString(), "a\"b\\c\nd\te");
  EXPECT_EQ(P(R"("Aé")")->AsString(), "A\xc3\xa9");
}

TEST(JsonParseTest, PreservesFieldOrder) {
  auto v = P(R"({"z": 1, "a": 2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsObject()[0].first, "z");
  EXPECT_EQ(v->AsObject()[1].first, "a");
}

class JsonErrorCase : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonErrorCase, Rejected) {
  EXPECT_FALSE(P(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, JsonErrorCase,
                         ::testing::Values("", "{", "[1,", "\"abc", "{\"a\" 1}",
                                           "tru", "1 2", "{\"a\":}", "[,]",
                                           "{\"a\":1,}", "nul"));

TEST(JsonPrintTest, ExtendedTypesPrintAsConstructors) {
  EXPECT_EQ(PrintJson(Value::MakePoint({1.5, -2.0})), "point(\"1.5,-2\")");
  EXPECT_EQ(PrintJson(Value::MakeDuration({2, 0})), "duration(\"P2M\")");
  Value dt = Value::MakeDateTime({0});
  EXPECT_EQ(PrintJson(dt), "datetime(\"1970-01-01T00:00:00.000Z\")");
}

TEST(JsonPrintTest, DoubleKeepsFraction) {
  // A double that holds an integral value must survive a round trip as a
  // double (datatype stability across the wire).
  auto v = ParseJson(PrintJson(Value::MakeDouble(5.0)));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsDouble());
}

Value RandomJsonValue(Rng* rng, int depth = 0) {
  if (depth < 3 && rng->NextBool(0.4)) {
    if (rng->NextBool(0.5)) {
      Array arr;
      size_t n = rng->NextBelow(5);
      for (size_t i = 0; i < n; ++i) arr.push_back(RandomJsonValue(rng, depth + 1));
      return Value::MakeArray(std::move(arr));
    }
    Fields fields;
    size_t n = rng->NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      fields.emplace_back(rng->NextAlpha(1 + rng->NextBelow(6)),
                          RandomJsonValue(rng, depth + 1));
    }
    return Value::MakeObject(std::move(fields));
  }
  switch (rng->NextBelow(5)) {
    case 0:
      return Value::MakeNull();
    case 1:
      return Value::MakeBool(rng->NextBool(0.5));
    case 2:
      return Value::MakeInt(rng->NextInRange(-1000000000, 1000000000));
    case 3:
      return Value::MakeDouble(rng->NextDouble() * 1e6 - 5e5);
    default:
      return Value::MakeString(rng->NextAlpha(rng->NextBelow(16)));
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, PrintParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Value v = RandomJsonValue(&rng);
    auto back = ParseJson(PrintJson(v));
    ASSERT_TRUE(back.ok()) << PrintJson(v);
    EXPECT_EQ(*back, v) << PrintJson(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty, ::testing::Values(11, 22, 33));

TEST(DatatypeTest, ValidatesRequiredFields) {
  Datatype t("T", {{"id", FieldType::kInt64, false}, {"note", FieldType::kString, true}});
  Value ok = Value::MakeObject({{"id", Value::MakeInt(1)}});
  EXPECT_TRUE(t.ValidateAndCoerce(&ok).ok());
  Value missing_id = Value::MakeObject({{"note", Value::MakeString("x")}});
  EXPECT_TRUE(t.ValidateAndCoerce(&missing_id).IsTypeMismatch());
  Value wrong_type = Value::MakeObject({{"id", Value::MakeString("one")}});
  EXPECT_TRUE(t.ValidateAndCoerce(&wrong_type).IsTypeMismatch());
}

TEST(DatatypeTest, OpenFieldsPassThrough) {
  Datatype t("T", {{"id", FieldType::kInt64, false}});
  Value v = Value::MakeObject({{"id", Value::MakeInt(1)}, {"extra", Value::MakeBool(true)}});
  EXPECT_TRUE(t.ValidateAndCoerce(&v).ok());
  EXPECT_TRUE(v.GetField("extra")->AsBool());
}

TEST(DatatypeTest, CoercesExtendedTypes) {
  Datatype t("T", {{"id", FieldType::kInt64, false},
                   {"when", FieldType::kDateTime, false},
                   {"span", FieldType::kDuration, false},
                   {"loc", FieldType::kPoint, false},
                   {"area", FieldType::kRectangle, false},
                   {"zone", FieldType::kCircle, false},
                   {"score", FieldType::kDouble, false}});
  auto parsed = ParseJson(R"({
    "id": 1,
    "when": "2019-03-01T12:00:00Z",
    "span": "P2M",
    "loc": [1.0, 2.0],
    "area": [[0.0, 0.0], [2.0, 2.0]],
    "zone": [[1.0, 1.0], 0.5],
    "score": 7
  })");
  ASSERT_TRUE(parsed.ok());
  Value v = std::move(parsed).value();
  ASSERT_TRUE(t.ValidateAndCoerce(&v).ok());
  EXPECT_TRUE(v.GetField("when")->IsDateTime());
  EXPECT_EQ(v.GetField("span")->AsDuration().months, 2);
  EXPECT_EQ(v.GetField("loc")->AsPoint().y, 2.0);
  EXPECT_EQ(v.GetField("area")->AsRectangle().hi.x, 2.0);
  EXPECT_EQ(v.GetField("zone")->AsCircle().radius, 0.5);
  EXPECT_TRUE(v.GetField("score")->IsDouble());
}

TEST(DatatypeTest, BadCoercionFails) {
  Datatype t("T", {{"when", FieldType::kDateTime, false}});
  Value v = Value::MakeObject({{"when", Value::MakeString("not-a-date")}});
  EXPECT_TRUE(t.ValidateAndCoerce(&v).IsTypeMismatch());
}

TEST(DatatypeTest, FieldTypeNamesRoundTrip) {
  for (const char* name : {"int64", "string", "double", "boolean", "datetime",
                           "duration", "point", "rectangle", "circle"}) {
    auto ft = FieldTypeFromName(name);
    ASSERT_TRUE(ft.ok()) << name;
    EXPECT_STREQ(FieldTypeName(*ft), name);
  }
  EXPECT_FALSE(FieldTypeFromName("blob").ok());
}

}  // namespace
}  // namespace idea::adm
