// Zero-copy frame views vs full decode: the lazy read path must be
// byte-identical and order-identical to deserializing the whole frame.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adm/serde.h"
#include "adm/value.h"
#include "common/rng.h"
#include "runtime/frame.h"

namespace idea::runtime {
namespace {

using adm::Value;

/// Random ADM value tree; `depth` bounds nesting.
Value RandomValue(Rng* rng, int depth) {
  // Nested collections get rarer as depth grows.
  uint64_t pick = rng->NextBelow(depth > 0 ? 12 : 10);
  switch (pick) {
    case 0:
      return Value::MakeNull();
    case 1:
      return Value::MakeMissing();
    case 2:
      return Value::MakeBool(rng->NextBool(0.5));
    case 3:
      return Value::MakeInt(rng->NextInRange(-1'000'000'000, 1'000'000'000));
    case 4:
      return Value::MakeDouble(rng->NextDouble() * 2e6 - 1e6);
    case 5:
      return Value::MakeString(rng->NextAlpha(rng->NextBelow(24)));
    case 6:
      return Value::MakeDateTime({rng->NextInRange(0, 4'000'000'000'000)});
    case 7:
      return Value::MakeDuration({static_cast<int32_t>(rng->NextInRange(-24, 24)),
                                  rng->NextInRange(-100'000, 100'000)});
    case 8:
      return Value::MakePoint({rng->NextDouble() * 360 - 180, rng->NextDouble() * 180 - 90});
    case 9: {
      adm::Point lo{rng->NextDouble() * 100, rng->NextDouble() * 100};
      return Value::MakeRectangle({lo, {lo.x + rng->NextDouble(), lo.y + rng->NextDouble()}});
    }
    case 10: {
      adm::Array a;
      size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) a.push_back(RandomValue(rng, depth - 1));
      return Value::MakeArray(std::move(a));
    }
    default: {
      adm::Fields f;
      size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        f.emplace_back(rng->NextAlpha(1 + rng->NextBelow(8)), RandomValue(rng, depth - 1));
      }
      return Value::MakeObject(std::move(f));
    }
  }
}

/// Random top-level record: mostly objects (the feed shape), with the
/// occasional bare scalar/array to cover the non-indexed path.
Value RandomRecord(Rng* rng) {
  if (rng->NextBool(0.85)) {
    adm::Fields f;
    size_t n = rng->NextBelow(8);
    for (size_t i = 0; i < n; ++i) {
      // Duplicate names are legal ADM; GetField takes the first match.
      std::string name = rng->NextBool(0.1) ? "dup" : rng->NextAlpha(1 + rng->NextBelow(10));
      f.emplace_back(std::move(name), RandomValue(rng, 2));
    }
    return Value::MakeObject(std::move(f));
  }
  return RandomValue(rng, 2);
}

void ExpectSameValue(const Value& a, const Value& b) {
  // Byte equality of the canonical serialization is the strictest equivalence
  // the engine has (field order, type tags, and payloads all included).
  EXPECT_EQ(adm::SerializeToBytes(a), adm::SerializeToBytes(b));
}

TEST(FrameViewTest, FuzzRoundTripMatchesFullDecode) {
  Rng rng(0x1DEA5EEDull);
  for (int round = 0; round < 50; ++round) {
    std::vector<Value> records;
    size_t n = 1 + rng.NextBelow(40);
    for (size_t i = 0; i < n; ++i) records.push_back(RandomRecord(&rng));

    Frame frame = Frame::FromRecords(records);
    ASSERT_EQ(frame.record_count(), records.size());

    // Whole-frame decode: order-identical to the input.
    std::vector<Value> decoded;
    ASSERT_TRUE(frame.Decode(&decoded).ok());
    ASSERT_EQ(decoded.size(), records.size());
    for (size_t i = 0; i < n; ++i) ExpectSameValue(decoded[i], records[i]);

    FrameView view(frame);
    ASSERT_EQ(view.size(), n);
    for (size_t i = 0; i < n; ++i) {
      RecordView rv = view[i];
      // Raw bytes are exactly the canonical serialization.
      std::vector<uint8_t> expect = adm::SerializeToBytes(records[i]);
      std::span<const uint8_t> raw = rv.raw();
      ASSERT_EQ(std::vector<uint8_t>(raw.begin(), raw.end()), expect);

      // Per-record lazy decode matches.
      auto full = rv.Decode();
      ASSERT_TRUE(full.ok());
      ExpectSameValue(*full, records[i]);

      EXPECT_EQ(rv.is_object(), records[i].IsObject());
      if (!records[i].IsObject()) {
        EXPECT_EQ(rv.field_count(), 0u);
        continue;
      }
      const adm::Fields& fields = records[i].AsObject();
      ASSERT_EQ(rv.field_count(), fields.size());
      for (size_t j = 0; j < fields.size(); ++j) {
        EXPECT_EQ(rv.field_name(j), fields[j].first);
        auto fv = rv.DecodeField(j);
        ASSERT_TRUE(fv.ok());
        ExpectSameValue(*fv, fields[j].second);
        // By-name lookup mirrors Value::GetField (first match wins).
        auto byname = rv.DecodeFieldByName(fields[j].first);
        ASSERT_TRUE(byname.ok());
        ExpectSameValue(*byname, records[i].GetFieldOrMissing(fields[j].first));
      }
      EXPECT_TRUE(rv.DecodeFieldByName("no-such-field-xx")->IsMissing());
    }
  }
}

TEST(FrameViewTest, AppendRecordForwardsBytesAndIndexIntact) {
  Rng rng(0xF0F0F0F0ull);
  std::vector<Value> records;
  for (int i = 0; i < 64; ++i) records.push_back(RandomRecord(&rng));
  Frame src = Frame::FromRecords(records);

  // Re-route every record into two alternating frames, as the connectors do.
  Frame a, b;
  FrameView sv(src);
  for (size_t i = 0; i < sv.size(); ++i) (i % 2 == 0 ? a : b).AppendRecord(sv[i]);

  ASSERT_EQ(a.record_count() + b.record_count(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    RecordView rv = FrameView(i % 2 == 0 ? a : b)[i / 2];
    std::vector<uint8_t> expect = adm::SerializeToBytes(records[i]);
    std::span<const uint8_t> raw = rv.raw();
    ASSERT_EQ(std::vector<uint8_t>(raw.begin(), raw.end()), expect);
    if (records[i].IsObject()) {
      const adm::Fields& fields = records[i].AsObject();
      ASSERT_EQ(rv.field_count(), fields.size());
      for (size_t j = 0; j < fields.size(); ++j) {
        EXPECT_EQ(rv.field_name(j), fields[j].first);
        auto fv = rv.DecodeField(j);
        ASSERT_TRUE(fv.ok());
        ExpectSameValue(*fv, fields[j].second);
      }
    }
  }

  // Forwarded frames decode wholesale too.
  std::vector<Value> out_a, out_b;
  ASSERT_TRUE(a.Decode(&out_a).ok());
  ASSERT_TRUE(b.Decode(&out_b).ok());
  ASSERT_EQ(out_a.size() + out_b.size(), records.size());
}

TEST(FrameViewTest, EmptyAndClearedFrames) {
  Frame f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(FrameView(f).size(), 0u);
  f.Append(Value::MakeInt(7));
  EXPECT_EQ(f.record_count(), 1u);
  EXPECT_FALSE(FrameView(f)[0].is_object());
  f.Clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.byte_size(), 0u);
}

}  // namespace
}  // namespace idea::runtime
