// Tests for the observability subsystem: metrics primitives, the registry,
// the batch tracer, and the JSON snapshot exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "adm/json.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

namespace idea::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is [0, 1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1.5), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Every bucket's lower bound maps back to that bucket.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(
                  static_cast<double>(Histogram::BucketLowerBound(i))),
              i)
        << "bucket " << i;
  }
  // Values beyond the top bucket's lower bound clamp into the top bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
}

TEST(HistogramTest, PercentileExtraction) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  for (int i = 1; i <= 100; ++i) h.Record(i);  // ~uniform over [1, 100]
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  // Log-scale buckets bound each percentile to within its power-of-two
  // bucket; the p50 of 1..100 lies in [32, 64), p95/p99 in [64, 100].
  double p50 = h.Percentile(0.50);
  EXPECT_GE(p50, 32);
  EXPECT_LT(p50, 64);
  double p95 = h.Percentile(0.95);
  EXPECT_GE(p95, 64);
  EXPECT_LE(p95, 100);
  // Percentiles never exceed the recorded max, even in the max's bucket.
  EXPECT_LE(h.Percentile(0.999), 100);
  EXPECT_LE(h.Percentile(1.0), 100);
  // Monotone in q.
  EXPECT_LE(h.Percentile(0.1), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h.Percentile(0.99));
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 42);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_us, 42);
  EXPECT_DOUBLE_EQ(s.max_us, 42);
  EXPECT_DOUBLE_EQ(s.p50_us, 42);
}

TEST(GaugeTest, HighWatermark) {
  Gauge g;
  g.Set(3);
  g.Set(10);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_watermark(), 10);
  g.Add(5);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.high_watermark(), 10);
  g.Add(20);
  EXPECT_EQ(g.high_watermark(), 27);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("idea.test.c");
  Counter* b = reg.GetCounter("idea.test.c");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("idea.test.other"), a);
  a->Add(7);
  EXPECT_EQ(b->value(), 7u);
}

TEST(RegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("idea.test.concurrent");
      Histogram* h = reg.GetHistogram("idea.test.concurrent_us");
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Record(static_cast<double>(i % 512));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("idea.test.concurrent")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(reg.GetHistogram("idea.test.concurrent_us")->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(RegistryTest, ScopePrefixesNames) {
  MetricsRegistry reg;
  Scope scope(&reg, "idea.feed.F");
  scope.Counter("records")->Add(3);
  EXPECT_EQ(reg.GetCounter("idea.feed.F.records")->value(), 3u);
}

TEST(TracerTest, SpansAttachToTrace) {
  Tracer tracer(4);
  uint64_t id = tracer.StartTrace("F");
  ASSERT_NE(id, 0u);
  tracer.AddSpan(id, Span{"intake.pull", 0, 1.0, 2.0});
  tracer.AddSpan(id, Span{"storage.store", 1, 3.0, 4.0});
  BatchTrace trace;
  ASSERT_TRUE(tracer.Find(id, &trace));
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "intake.pull");
  EXPECT_EQ(trace.spans[1].node, 1);
  // The ring evicts oldest-first; dropped traces ignore late spans.
  for (int i = 0; i < 10; ++i) tracer.StartTrace("F");
  EXPECT_FALSE(tracer.Find(id, &trace));
  tracer.AddSpan(id, Span{"late", 0, 0, 0});  // must not crash
  EXPECT_EQ(tracer.Recent().size(), 4u);
  uint64_t dropped = tracer.StartTrace("F");
  tracer.Drop(dropped);
  EXPECT_FALSE(tracer.Find(dropped, &trace));
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("idea.test.records")->Add(12);
  reg.GetGauge("idea.test.depth")->Set(5);
  reg.GetGauge("idea.test.depth")->Set(2);
  reg.GetHistogram("idea.test.lat_us")->Record(100);
  reg.GetHistogram("idea.test.lat_us")->Record(200);

  Tracer tracer;
  uint64_t id = tracer.StartTrace("F");
  tracer.AddSpan(id, Span{"compute.enrich", 2, 10.0, 5.5});

  SnapshotExporter exporter(&reg, &tracer);
  std::string lines = exporter.SnapshotJsonLines();
  std::istringstream in(lines);
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  auto metrics = adm::ParseJson(line);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString() << "\n" << line;
  EXPECT_EQ(metrics->GetField("type")->AsString(), "metrics");
  const adm::Value* counters = metrics->GetField("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetField("idea.test.records")->AsInt(), 12);
  const adm::Value* depth = metrics->GetField("gauges")->GetField("idea.test.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->GetField("value")->AsInt(), 2);
  EXPECT_EQ(depth->GetField("high_watermark")->AsInt(), 5);
  const adm::Value* lat = metrics->GetField("histograms")->GetField("idea.test.lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->GetField("count")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(lat->GetField("max_us")->AsNumber(), 200);
  EXPECT_GT(lat->GetField("p50_us")->AsNumber(), 0);

  ASSERT_TRUE(std::getline(in, line));
  auto trace = adm::ParseJson(line);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString() << "\n" << line;
  EXPECT_EQ(trace->GetField("type")->AsString(), "trace");
  EXPECT_EQ(trace->GetField("feed")->AsString(), "F");
  const adm::Value* spans = trace->GetField("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 1u);
  EXPECT_EQ(spans->AsArray()[0].GetField("name")->AsString(), "compute.enrich");
  EXPECT_EQ(spans->AsArray()[0].GetField("node")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(spans->AsArray()[0].GetField("dur_us")->AsNumber(), 5.5);
}

TEST(SnapshotTest, PeriodicTickAgainstSuppliedClock) {
  MetricsRegistry reg;
  reg.GetCounter("idea.test.ticks")->Increment();
  SnapshotExporter exporter(&reg);
  std::string path = ::testing::TempDir() + "/obs_tick_test.jsonl";
  ASSERT_TRUE(exporter.OpenFile(path).ok());
  exporter.SetPeriodMicros(1000);
  EXPECT_TRUE(exporter.Tick(0));      // first tick always writes
  EXPECT_FALSE(exporter.Tick(500));   // within the period
  EXPECT_TRUE(exporter.Tick(1500));
  EXPECT_FALSE(exporter.Tick(1600));
  EXPECT_TRUE(exporter.Tick(99999));
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(adm::ParseJson(line).ok()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(RegistryTest, SnapshotListsAllMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("c1")->Increment();
  reg.GetGauge("g1")->Set(1);
  reg.GetHistogram("h1")->Record(1);
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
  reg.ResetForTest();
  EXPECT_EQ(reg.GetCounter("c1")->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h1")->count(), 0u);
}

}  // namespace
}  // namespace idea::obs
