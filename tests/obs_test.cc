// Tests for the observability subsystem: metrics primitives, the registry,
// the batch tracer, and the JSON snapshot exporter.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "adm/json.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"

namespace idea::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is [0, 1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1.5), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Every bucket's lower bound maps back to that bucket.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(
                  static_cast<double>(Histogram::BucketLowerBound(i))),
              i)
        << "bucket " << i;
  }
  // Values beyond the top bucket's lower bound clamp into the top bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
}

TEST(HistogramTest, PercentileExtraction) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  for (int i = 1; i <= 100; ++i) h.Record(i);  // ~uniform over [1, 100]
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  // Log-scale buckets bound each percentile to within its power-of-two
  // bucket; the p50 of 1..100 lies in [32, 64), p95/p99 in [64, 100].
  double p50 = h.Percentile(0.50);
  EXPECT_GE(p50, 32);
  EXPECT_LT(p50, 64);
  double p95 = h.Percentile(0.95);
  EXPECT_GE(p95, 64);
  EXPECT_LE(p95, 100);
  // Percentiles never exceed the recorded max, even in the max's bucket.
  EXPECT_LE(h.Percentile(0.999), 100);
  EXPECT_LE(h.Percentile(1.0), 100);
  // Monotone in q.
  EXPECT_LE(h.Percentile(0.1), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h.Percentile(0.99));
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 42);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_us, 42);
  EXPECT_DOUBLE_EQ(s.max_us, 42);
  EXPECT_DOUBLE_EQ(s.p50_us, 42);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  // Empty histogram: every quantile is 0, including the clamped extremes.
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 0);

  // Single sample: every quantile is that sample.
  h.Record(7);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 7);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 7);
  EXPECT_DOUBLE_EQ(h.Percentile(0.999), 7);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 7);

  // Overflow bucket: values beyond the top bucket's lower bound land in the
  // top bucket and percentiles stay clamped to the recorded max.
  Histogram top;
  const double huge = 9e18;  // >= 2^62, the top bucket's lower bound
  ASSERT_EQ(Histogram::BucketIndex(huge), Histogram::kBuckets - 1);
  top.Record(huge);
  EXPECT_EQ(top.count(), 1u);
  EXPECT_DOUBLE_EQ(top.max(), huge);
  EXPECT_DOUBLE_EQ(top.Percentile(1.0), huge);
  EXPECT_LE(top.Percentile(0.5), top.max());
  EXPECT_GE(top.Percentile(0.5),
            static_cast<double>(Histogram::BucketLowerBound(Histogram::kBuckets - 1)));
}

TEST(GaugeTest, HighWatermark) {
  Gauge g;
  g.Set(3);
  g.Set(10);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_watermark(), 10);
  g.Add(5);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.high_watermark(), 10);
  g.Add(20);
  EXPECT_EQ(g.high_watermark(), 27);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("idea.test.c");
  Counter* b = reg.GetCounter("idea.test.c");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("idea.test.other"), a);
  a->Add(7);
  EXPECT_EQ(b->value(), 7u);
}

TEST(RegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("idea.test.concurrent");
      Histogram* h = reg.GetHistogram("idea.test.concurrent_us");
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Record(static_cast<double>(i % 512));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("idea.test.concurrent")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(reg.GetHistogram("idea.test.concurrent_us")->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(RegistryTest, ScopePrefixesNames) {
  MetricsRegistry reg;
  Scope scope(&reg, "idea.feed.F");
  scope.Counter("records")->Add(3);
  EXPECT_EQ(reg.GetCounter("idea.feed.F.records")->value(), 3u);
}

TEST(TracerTest, SpansAttachToTrace) {
  Tracer tracer(4);
  uint64_t id = tracer.StartTrace("F");
  ASSERT_NE(id, 0u);
  tracer.AddSpan(id, Span{"intake.pull", 0, 1.0, 2.0});
  tracer.AddSpan(id, Span{"storage.store", 1, 3.0, 4.0});
  BatchTrace trace;
  ASSERT_TRUE(tracer.Find(id, &trace));
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "intake.pull");
  EXPECT_EQ(trace.spans[1].node, 1);
  // The ring evicts oldest-first; dropped traces ignore late spans.
  for (int i = 0; i < 10; ++i) tracer.StartTrace("F");
  EXPECT_FALSE(tracer.Find(id, &trace));
  tracer.AddSpan(id, Span{"late", 0, 0, 0});  // must not crash
  EXPECT_EQ(tracer.Recent().size(), 4u);
  uint64_t dropped = tracer.StartTrace("F");
  tracer.Drop(dropped);
  EXPECT_FALSE(tracer.Find(dropped, &trace));
}

TEST(TracerTest, FindAfterEvictionAndDropOfUnknownId) {
  Tracer tracer(2);
  uint64_t first = tracer.StartTrace("F");
  uint64_t second = tracer.StartTrace("F");
  uint64_t third = tracer.StartTrace("F");  // evicts `first`
  BatchTrace trace;
  EXPECT_FALSE(tracer.Find(first, &trace));
  EXPECT_TRUE(tracer.Find(second, &trace));
  EXPECT_TRUE(tracer.Find(third, &trace));
  EXPECT_EQ(tracer.Recent().size(), 2u);
  // Spans for an evicted id are ignored, not resurrected.
  tracer.AddSpan(first, Span{"late", 0, 0, 0});
  EXPECT_FALSE(tracer.Find(first, &trace));
  EXPECT_EQ(tracer.Recent().size(), 2u);
  // Dropping an id the ring has never seen (or already evicted) is a no-op.
  tracer.Drop(first);
  tracer.Drop(99999);
  EXPECT_EQ(tracer.Recent().size(), 2u);
  EXPECT_TRUE(tracer.Find(second, &trace));
  EXPECT_TRUE(tracer.Find(third, &trace));
  // Dropping a live id removes exactly that trace.
  tracer.Drop(second);
  EXPECT_FALSE(tracer.Find(second, &trace));
  EXPECT_TRUE(tracer.Find(third, &trace));
  EXPECT_EQ(tracer.Recent().size(), 1u);
}

TEST(FlightRecorderTest, RingKeepsNewestAndDumpsParseableJson) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.Recent().size(), 0u);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventKind::kRetry, "F", "attempt", i, i);
  }
  EXPECT_EQ(recorder.events_recorded(), 10u);
  std::vector<FlightEvent> events = recorder.Recent();
  ASSERT_EQ(events.size(), 4u);  // capacity bound; oldest evicted
  // Oldest-first order over the surviving window (nodes 6, 7, 8, 9).
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].node, static_cast<int>(6 + i));
    EXPECT_EQ(events[i].kind, FlightEventKind::kRetry);
    EXPECT_EQ(events[i].scope, "F");
  }
  EXPECT_EQ(recorder.Recent(2).size(), 2u);
  EXPECT_EQ(recorder.Recent(2)[1].node, 9);

  auto dump = adm::ParseJson(recorder.DumpJson());
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->GetField("type")->AsString(), "flight_recorder");
  EXPECT_EQ(dump->GetField("events_recorded")->AsInt(), 10);
  ASSERT_NE(dump->GetField("events"), nullptr);
  const auto& arr = dump->GetField("events")->AsArray();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr[0].GetField("kind")->AsString(), "retry");
  EXPECT_EQ(arr[0].GetField("scope")->AsString(), "F");

  recorder.Clear();
  EXPECT_EQ(recorder.Recent().size(), 0u);
  EXPECT_EQ(recorder.events_recorded(), 0u);
}

TEST(FlightRecorderTest, DumpToFileWritesParseableJson) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kFeedStart, "F", "dataset=D");
  recorder.Record(FlightEventKind::kFeedAbort, "F", "Internal: boom");
  std::string path = ::testing::TempDir() + "/flight_recorder_test.json";
  ASSERT_TRUE(recorder.DumpToFile(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto dump = adm::ParseJson(line);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString() << "\n" << line;
  const auto& arr = dump->GetField("events")->AsArray();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].GetField("kind")->AsString(), "feed_start");
  EXPECT_EQ(arr[1].GetField("kind")->AsString(), "feed_abort");
  EXPECT_EQ(arr[1].GetField("detail")->AsString(), "Internal: boom");
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentRecordersKeepCapacityBound) {
  FlightRecorder recorder(64);
  constexpr int kThreads = 8;
  constexpr int kEvents = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.Record(FlightEventKind::kFaultFire, "p" + std::to_string(t),
                        "", t, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.events_recorded(),
            static_cast<uint64_t>(kThreads) * kEvents);
  std::vector<FlightEvent> events = recorder.Recent();
  EXPECT_LE(events.size(), 64u);
  EXPECT_GE(events.size(), 1u);
}

TEST(TimeSeriesTest, SampleOnceDerivesCounterRates) {
  MetricsRegistry reg;
  TimeSeriesOptions options;
  options.capacity = 3;
  options.prefixes = {"idea.feed."};
  TimeSeriesSampler sampler(&reg, options);

  Counter* records = reg.GetCounter("idea.feed.F.records_ingested");
  reg.GetGauge("idea.feed.F.depth")->Set(4);
  reg.GetHistogram("idea.feed.F.wait_us")->Record(100);
  reg.GetCounter("idea.other.ignored")->Increment();  // prefix-filtered out

  records->Add(100);
  sampler.SampleOnce(1'000'000);
  records->Add(300);
  sampler.SampleOnce(2'000'000);  // +300 in 1s -> 300/s

  std::vector<TimeSeriesPoint> series =
      sampler.Series("idea.feed.F.records_ingested");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].value, 100);
  EXPECT_DOUBLE_EQ(series[0].rate_per_s, 0);  // no previous sample
  EXPECT_DOUBLE_EQ(series[1].value, 400);
  EXPECT_DOUBLE_EQ(series[1].rate_per_s, 300);

  EXPECT_EQ(sampler.Series("idea.other.ignored").size(), 0u);
  ASSERT_EQ(sampler.Series("idea.feed.F.depth").size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.Series("idea.feed.F.depth")[0].value, 4);
  ASSERT_EQ(sampler.Series("idea.feed.F.wait_us").size(), 2u);
  EXPECT_GT(sampler.Series("idea.feed.F.wait_us")[0].value, 0);  // p95

  // The ring stays bounded at `capacity`, keeping the newest points.
  sampler.SampleOnce(3'000'000);
  sampler.SampleOnce(4'000'000);
  series = sampler.Series("idea.feed.F.records_ingested");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].ts_us, 2'000'000);
  EXPECT_EQ(sampler.samples_taken(), 4u);
}

TEST(TimeSeriesTest, ToJsonParsesAndCarriesSeries) {
  MetricsRegistry reg;
  TimeSeriesOptions options;
  options.prefixes = {};  // track everything
  TimeSeriesSampler sampler(&reg, options);
  reg.GetCounter("c")->Add(5);
  reg.GetGauge("g")->Set(-2);
  sampler.SampleOnce(1000);

  auto parsed = adm::ParseJson(sampler.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetField("type")->AsString(), "timeseries");
  EXPECT_EQ(parsed->GetField("samples")->AsInt(), 1);
  const adm::Value* series = parsed->GetField("series");
  ASSERT_NE(series, nullptr);
  const adm::Value* c = series->GetField("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->GetField("kind")->AsString(), "counter");
  ASSERT_EQ(c->GetField("points")->AsArray().size(), 1u);
  EXPECT_DOUBLE_EQ(c->GetField("points")->AsArray()[0].GetField("value")->AsNumber(), 5);
  const adm::Value* g = series->GetField("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->GetField("kind")->AsString(), "gauge");
  EXPECT_DOUBLE_EQ(g->GetField("points")->AsArray()[0].GetField("value")->AsNumber(), -2);
}

TEST(TimeSeriesTest, BackgroundThreadSamplesPeriodically) {
  MetricsRegistry reg;
  reg.GetCounter("idea.feed.F.records_ingested")->Add(1);
  TimeSeriesOptions options;
  options.period_us = 2000;  // 2ms for a fast test
  TimeSeriesSampler sampler(&reg, options);
  ASSERT_TRUE(sampler.Start().ok());
  ASSERT_TRUE(sampler.Start().ok());  // idempotent
  for (int i = 0; i < 200 && sampler.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_GE(sampler.samples_taken(), 3u);
  EXPECT_GE(sampler.Series("idea.feed.F.records_ingested").size(), 3u);
}

TEST(SnapshotTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("idea.feed.F.records_ingested")->Add(12);
  reg.GetGauge("idea.intake.F.p0.queue_depth")->Set(9);
  reg.GetGauge("idea.intake.F.p0.queue_depth")->Set(3);
  reg.GetHistogram("idea.sched.sim.queue_wait_us")->Record(100);
  reg.GetHistogram("idea.sched.sim.queue_wait_us")->Record(200);

  SnapshotExporter exporter(&reg);
  std::string text = exporter.PrometheusText();

  // Counters: sanitized name, TYPE line, value.
  EXPECT_NE(text.find("# TYPE idea_feed_F_records_ingested counter\n"
                      "idea_feed_F_records_ingested 12\n"),
            std::string::npos)
      << text;
  // Gauges: value plus a companion high-watermark gauge.
  EXPECT_NE(text.find("idea_intake_F_p0_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("idea_intake_F_p0_queue_depth_high_watermark 9\n"),
            std::string::npos);
  // Histograms: summary with quantile labels and _sum/_count rows.
  EXPECT_NE(text.find("# TYPE idea_sched_sim_queue_wait_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("idea_sched_sim_queue_wait_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("idea_sched_sim_queue_wait_us{quantile=\"0.95\"} "),
            std::string::npos);
  EXPECT_NE(text.find("idea_sched_sim_queue_wait_us{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("idea_sched_sim_queue_wait_us_sum 300.000\n"),
            std::string::npos);
  EXPECT_NE(text.find("idea_sched_sim_queue_wait_us_count 2\n"),
            std::string::npos);
  // No unsanitized dots survive in metric names.
  EXPECT_EQ(text.find("idea.feed"), std::string::npos);
}

TEST(SnapshotTest, ChromeTraceJsonExport) {
  Tracer tracer;
  uint64_t id = tracer.StartTrace("F");
  tracer.AddSpan(id, Span{"intake.pull", 0, 10.0, 2.5});
  tracer.AddSpan(id, Span{"compute.enrich", 2, 12.5, 7.5});

  std::string json = SnapshotExporter::ChromeTraceJson(tracer.Recent());
  auto parsed = adm::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const adm::Value* events = parsed->GetField("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->AsArray().size(), 2u);
  const adm::Value& ev = events->AsArray()[1];
  EXPECT_EQ(ev.GetField("name")->AsString(), "compute.enrich");
  EXPECT_EQ(ev.GetField("ph")->AsString(), "X");
  EXPECT_DOUBLE_EQ(ev.GetField("ts")->AsNumber(), 12.5);
  EXPECT_DOUBLE_EQ(ev.GetField("dur")->AsNumber(), 7.5);
  EXPECT_EQ(ev.GetField("tid")->AsInt(), 2);
  EXPECT_EQ(ev.GetField("args")->GetField("feed")->AsString(), "F");
  // Empty ring still yields a valid, loadable document.
  auto empty = adm::ParseJson(SnapshotExporter::ChromeTraceJson({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->GetField("traceEvents")->AsArray().size(), 0u);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("idea.test.records")->Add(12);
  reg.GetGauge("idea.test.depth")->Set(5);
  reg.GetGauge("idea.test.depth")->Set(2);
  reg.GetHistogram("idea.test.lat_us")->Record(100);
  reg.GetHistogram("idea.test.lat_us")->Record(200);

  Tracer tracer;
  uint64_t id = tracer.StartTrace("F");
  tracer.AddSpan(id, Span{"compute.enrich", 2, 10.0, 5.5});

  SnapshotExporter exporter(&reg, &tracer);
  std::string lines = exporter.SnapshotJsonLines();
  std::istringstream in(lines);
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  auto metrics = adm::ParseJson(line);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString() << "\n" << line;
  EXPECT_EQ(metrics->GetField("type")->AsString(), "metrics");
  const adm::Value* counters = metrics->GetField("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetField("idea.test.records")->AsInt(), 12);
  const adm::Value* depth = metrics->GetField("gauges")->GetField("idea.test.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->GetField("value")->AsInt(), 2);
  EXPECT_EQ(depth->GetField("high_watermark")->AsInt(), 5);
  const adm::Value* lat = metrics->GetField("histograms")->GetField("idea.test.lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->GetField("count")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(lat->GetField("max_us")->AsNumber(), 200);
  EXPECT_GT(lat->GetField("p50_us")->AsNumber(), 0);

  ASSERT_TRUE(std::getline(in, line));
  auto trace = adm::ParseJson(line);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString() << "\n" << line;
  EXPECT_EQ(trace->GetField("type")->AsString(), "trace");
  EXPECT_EQ(trace->GetField("feed")->AsString(), "F");
  const adm::Value* spans = trace->GetField("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 1u);
  EXPECT_EQ(spans->AsArray()[0].GetField("name")->AsString(), "compute.enrich");
  EXPECT_EQ(spans->AsArray()[0].GetField("node")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(spans->AsArray()[0].GetField("dur_us")->AsNumber(), 5.5);
}

TEST(SnapshotTest, PeriodicTickAgainstSuppliedClock) {
  MetricsRegistry reg;
  reg.GetCounter("idea.test.ticks")->Increment();
  SnapshotExporter exporter(&reg);
  std::string path = ::testing::TempDir() + "/obs_tick_test.jsonl";
  ASSERT_TRUE(exporter.OpenFile(path).ok());
  exporter.SetPeriodMicros(1000);
  EXPECT_TRUE(exporter.Tick(0));      // first tick always writes
  EXPECT_FALSE(exporter.Tick(500));   // within the period
  EXPECT_TRUE(exporter.Tick(1500));
  EXPECT_FALSE(exporter.Tick(1600));
  EXPECT_TRUE(exporter.Tick(99999));
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(adm::ParseJson(line).ok()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(RegistryTest, SnapshotListsAllMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("c1")->Increment();
  reg.GetGauge("g1")->Set(1);
  reg.GetHistogram("h1")->Record(1);
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
  reg.ResetForTest();
  EXPECT_EQ(reg.GetCounter("c1")->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h1")->count(), 0u);
}

}  // namespace
}  // namespace idea::obs
