// Elastic membership, feed failover, and the memory governor: the epoch-
// stamped roster, heartbeat-driven suspect/dead transitions, the intake
// lease ledger's at-least-once redelivery, congestion-aware routing, the
// per-node admission governor, and the end-to-end chaos soak — kill a node
// mid-feed at a randomized point and prove the stored contents are
// bit-identical to a clean run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_controller.h"
#include "cluster/membership.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "feed/active_feed_manager.h"
#include "feed/intake_job.h"
#include "obs/metrics.h"
#include "runtime/memory_governor.h"
#include "runtime/partition_holder.h"

namespace idea {
namespace {

using cluster::HealthMonitorOptions;
using cluster::MembershipTable;
using cluster::NodeState;
using common::FaultInjector;
using common::FaultSpec;
using runtime::Admission;
using runtime::MemoryGovernor;
using runtime::MemoryGovernorOptions;

class ClusterHaTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Default().DisarmAll();
    FaultInjector::Default().Reseed(0);
  }
};

// ---------------------------------------------------------------------------
// Membership table

TEST_F(ClusterHaTest, MembershipEpochAdvancesOnEveryRealTransition) {
  MembershipTable table;
  EXPECT_EQ(table.epoch(), 0u);
  EXPECT_EQ(table.AddNode(), 0u);
  EXPECT_EQ(table.AddNode(), 1u);
  const uint64_t after_add = table.epoch();
  EXPECT_EQ(after_add, 2u);

  ASSERT_TRUE(table.SetState(0, NodeState::kSuspect).ok());
  EXPECT_EQ(table.epoch(), after_add + 1);
  // No-op transition: same state must not advance the epoch (routers would
  // needlessly rebuild their bitmaps).
  ASSERT_TRUE(table.SetState(0, NodeState::kSuspect).ok());
  EXPECT_EQ(table.epoch(), after_add + 1);

  EXPECT_TRUE(table.IsAlive(0));     // suspect still executes
  EXPECT_FALSE(table.IsRoutable(0));  // but takes no new traffic
  EXPECT_TRUE(table.IsRoutable(1));

  ASSERT_TRUE(table.SetState(0, NodeState::kDead).ok());
  EXPECT_TRUE(table.IsDead(0));
  // Dead is terminal: rejoin happens as a *new* node.
  EXPECT_FALSE(table.SetState(0, NodeState::kAlive).ok());
  EXPECT_EQ(table.AliveNodes(), std::vector<size_t>{1});
  // Out-of-range nodes read as dead, never routable.
  EXPECT_TRUE(table.IsDead(99));
}

TEST_F(ClusterHaTest, HealthMonitorEscalatesSilenceToSuspectThenDead) {
  MembershipTable table;
  table.AddNode();
  table.AddNode();
  HealthMonitorOptions opt;
  opt.heartbeat_interval_us = 1000;
  opt.suspect_misses = 2;
  opt.dead_misses = 4;
  cluster::HealthMonitor monitor(&table, opt);

  // Node 0 beats every tick; node 1 goes silent.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(monitor.Heartbeat(0, "node-0"));
    EXPECT_TRUE(monitor.Tick(opt.heartbeat_interval_us).empty());
  }
  EXPECT_EQ(table.state(0), NodeState::kAlive);
  EXPECT_EQ(table.state(1), NodeState::kSuspect);

  // A beat recovers a suspect to alive.
  EXPECT_TRUE(monitor.Heartbeat(1, "node-1"));
  EXPECT_EQ(table.state(1), NodeState::kAlive);

  // Sustained silence crosses the death threshold; exactly that node comes
  // back as newly dead, exactly once.
  std::vector<size_t> newly_dead;
  for (int i = 0; i < 5; ++i) {
    monitor.Heartbeat(0, "node-0");
    for (size_t n : monitor.Tick(opt.heartbeat_interval_us)) newly_dead.push_back(n);
  }
  EXPECT_EQ(newly_dead, std::vector<size_t>{1});
  EXPECT_TRUE(table.IsDead(1));
  EXPECT_EQ(table.state(0), NodeState::kAlive);
  // Beats from a dead node are ignored.
  EXPECT_FALSE(monitor.Heartbeat(1, "node-1"));
}

TEST_F(ClusterHaTest, DroppedHeartbeatsKillTheWholeRosterDeterministically) {
  // The cluster.heartbeat fault site drops every beat: all nodes fall silent
  // and the monitor declares them dead after dead_misses intervals.
  FaultInjector::Default().Reseed(7);
  FaultInjector::Default().Arm("cluster.heartbeat", FaultSpec::Always());
  cluster::ClusterConfig cc;
  cc.nodes = 3;
  cc.mode = cluster::ExecutionMode::kThreads;
  cc.health.heartbeat_interval_us = 1000;
  cc.health.suspect_misses = 2;
  cc.health.dead_misses = 4;
  cluster::Cluster cluster(cc);

  std::vector<size_t> dead;
  for (int i = 0; i < 6; ++i) {
    for (size_t n : cluster.PumpHealth(cc.health.heartbeat_interval_us)) {
      dead.push_back(n);
    }
  }
  std::sort(dead.begin(), dead.end());
  EXPECT_EQ(dead, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(cluster.CheckAlive(0).ok());
  EXPECT_TRUE(cluster.CheckAlive(0).IsUnavailable());
}

TEST_F(ClusterHaTest, AddAndDrainGrowAndQuiesceTheRoster) {
  cluster::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = cluster::ExecutionMode::kThreads;
  cluster::Cluster cluster(cc);
  EXPECT_EQ(cluster.node_count(), 2u);

  const size_t added = cluster.AddNode();
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(cluster.node_count(), 3u);
  EXPECT_EQ(cluster.membership().size(), 3u);
  EXPECT_TRUE(cluster.membership().IsRoutable(added));
  // The new node is schedulable immediately.
  EXPECT_TRUE(cluster.CheckAlive(added).ok());

  ASSERT_TRUE(cluster.DrainNode(0).ok());
  EXPECT_EQ(cluster.membership().state(0), NodeState::kDraining);
  EXPECT_FALSE(cluster.membership().IsRoutable(0));
  ASSERT_TRUE(cluster.FailNode(1).ok());
  EXPECT_TRUE(cluster.CheckAlive(1).IsUnavailable());
  EXPECT_EQ(cluster.membership().RoutableNodes(), std::vector<size_t>{2});
}

// ---------------------------------------------------------------------------
// Memory governor

TEST_F(ClusterHaTest, GovernorGrantsWithinBudgetAndSpillsOversizedRequests) {
  MemoryGovernorOptions opt;
  opt.budget_bytes = 1024;
  opt.max_delay_us = 500;
  MemoryGovernor gov("test-gov-a", opt);

  EXPECT_EQ(gov.Admit(0), Admission::kGranted);
  EXPECT_EQ(gov.Admit(600), Admission::kGranted);
  EXPECT_EQ(gov.Stats().used_bytes, 600u);
  // Larger than the whole budget: immediate spill, nothing reserved.
  EXPECT_EQ(gov.Admit(4096), Admission::kSpill);
  EXPECT_EQ(gov.Stats().used_bytes, 600u);
  // Over-committed and nobody releases: delay expires into a spill with no
  // reservation either (the caller sheds instead).
  EXPECT_EQ(gov.Admit(600), Admission::kSpill);
  EXPECT_EQ(gov.Stats().used_bytes, 600u);
  gov.Release(600);
  EXPECT_EQ(gov.Stats().used_bytes, 0u);
  EXPECT_EQ(gov.Stats().spills, 2u);
  EXPECT_LE(gov.Stats().used_high_watermark, opt.budget_bytes);
}

TEST_F(ClusterHaTest, GovernorDelayedAdmissionSucceedsOnceMemoryFrees) {
  MemoryGovernorOptions opt;
  opt.budget_bytes = 1024;
  opt.max_delay_us = 2'000'000;  // ample; the release arrives in ~5ms
  MemoryGovernor gov("test-gov-b", opt);
  ASSERT_EQ(gov.Admit(900), Admission::kGranted);

  std::thread releaser([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gov.Release(900);
  });
  EXPECT_EQ(gov.Admit(900), Admission::kGrantedAfterDelay);
  releaser.join();
  EXPECT_EQ(gov.Stats().used_bytes, 900u);
  EXPECT_GE(gov.Stats().delayed, 1u);
  gov.Release(900);
}

TEST_F(ClusterHaTest, GovernorHoldResizesAndNeverExceedsBudget) {
  MemoryGovernorOptions opt;
  opt.budget_bytes = 1024;
  opt.max_delay_us = 100;
  MemoryGovernor gov("test-gov-c", opt);
  uint64_t hold = 0;
  EXPECT_EQ(gov.UpdateHold(&hold, 500), Admission::kGranted);
  EXPECT_EQ(hold, 500u);
  EXPECT_EQ(gov.Stats().used_bytes, 500u);
  // Shrink releases the delta.
  EXPECT_EQ(gov.UpdateHold(&hold, 200), Admission::kGranted);
  EXPECT_EQ(hold, 200u);
  EXPECT_EQ(gov.Stats().used_bytes, 200u);
  // Growth past the budget is capped at what fits; used never exceeds it.
  EXPECT_EQ(gov.UpdateHold(&hold, 4096), Admission::kSpill);
  EXPECT_EQ(hold, opt.budget_bytes);
  EXPECT_EQ(gov.Stats().used_bytes, opt.budget_bytes);
  EXPECT_LE(gov.Stats().used_high_watermark, opt.budget_bytes);
  gov.Release(hold);
}

// ---------------------------------------------------------------------------
// Intake lease ledger (at-least-once redelivery)

TEST_F(ClusterHaTest, LeaseLedgerRetiresFullyAckedBatches) {
  std::atomic<uint64_t> counter{0};
  runtime::IntakePartitionHolder holder(
      runtime::PartitionHolderId{"lease-feed", "intake", 0});
  holder.EnableLeasing(&counter);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(holder.Push("r" + std::to_string(i)).ok());
  }
  std::vector<std::string> out;
  uint64_t lease = 0;
  holder.PushEof();
  ASSERT_TRUE(holder.PullBatch(2, &out, &lease));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(lease, 1u);
  EXPECT_EQ(holder.UnackedForTest(), 2u);

  holder.CloseLease(lease, 2);  // the batch shipped as two frames
  EXPECT_EQ(holder.UnackedForTest(), 2u);
  holder.AckFrame(lease);
  EXPECT_EQ(holder.UnackedForTest(), 2u);  // one frame still in flight
  holder.AckFrame(lease);
  EXPECT_EQ(holder.UnackedForTest(), 0u);  // durable: ledger entry retired
  // Late/unknown acks are ignored.
  holder.AckFrame(lease);
  holder.AckFrame(999);

  // A batch that shipped zero frames has nothing to redeliver.
  ASSERT_TRUE(holder.PullBatch(2, &out, &lease));
  holder.CloseLease(lease, 0);
  EXPECT_EQ(holder.UnackedForTest(), 0u);
}

TEST_F(ClusterHaTest, RedeliveryRequeuesUnackedRecordsInOriginalOrder) {
  std::atomic<uint64_t> counter{0};
  runtime::IntakePartitionHolder holder(
      runtime::PartitionHolderId{"redeliver-feed", "intake", 0});
  holder.EnableLeasing(&counter);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(holder.Push("r" + std::to_string(i)).ok());
  }
  holder.PushEof();
  std::vector<std::string> first, second;
  uint64_t lease_a = 0, lease_b = 0;
  ASSERT_TRUE(holder.PullBatch(2, &first, &lease_a));   // r0 r1
  ASSERT_TRUE(holder.PullBatch(2, &second, &lease_b));  // r2 r3
  EXPECT_EQ(holder.UnackedForTest(), 4u);

  // Neither batch acked: the node died. Redelivery puts both back at the
  // front, oldest lease first, so the queue reads r0 r1 r2 r3 r4 r5 again.
  EXPECT_EQ(holder.RedeliverUnacked(), 4u);
  EXPECT_EQ(holder.UnackedForTest(), 0u);
  std::vector<std::string> all;
  std::vector<std::string> batch;
  while (holder.PullBatch(8, &batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
    batch.clear();
  }
  all.insert(all.end(), batch.begin(), batch.end());
  EXPECT_EQ(all, (std::vector<std::string>{"r0", "r1", "r2", "r3", "r4", "r5"}));
}

// ---------------------------------------------------------------------------
// Congestion-aware routing

/// Adapter that holds its records until the test opens the gate, so queue
/// skew can be staged before any routing happens.
feed::AdapterFactory MakeGatedFactory(std::shared_ptr<std::vector<std::string>> records,
                                      std::shared_ptr<std::atomic<bool>> gate) {
  return [records, gate](size_t, size_t) -> Result<std::unique_ptr<feed::FeedAdapter>> {
    auto idx = std::make_shared<size_t>(0);
    return std::unique_ptr<feed::FeedAdapter>(new feed::GeneratorAdapter(
        [records, gate, idx](std::string* out) -> bool {
          while (!gate->load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          if (*idx >= records->size()) return false;
          *out = (*records)[(*idx)++];
          return true;
        }));
  };
}

size_t RunSkewedIntake(feed::RoutingPolicy policy, size_t* total_out) {
  cluster::ClusterConfig cc;
  cc.nodes = 3;
  cc.mode = cluster::ExecutionMode::kThreads;
  cluster::Cluster cluster(cc);
  feed::IntakeJob intake(std::string("skew-") + feed::RoutingPolicyName(policy),
                         &cluster);
  auto records = std::make_shared<std::vector<std::string>>();
  for (int i = 0; i < 300; ++i) records->push_back("rec" + std::to_string(i));
  auto gate = std::make_shared<std::atomic<bool>>(false);
  feed::FeedConfig config;
  config.name = "skew";
  config.routing = policy;
  config.routing_slack = 8;
  EXPECT_TRUE(intake.Start(MakeGatedFactory(records, gate), config).ok());

  // Stage the skew: partition 0 already holds a deep backlog.
  const size_t kPrefill = 200;
  for (size_t i = 0; i < kPrefill; ++i) {
    EXPECT_TRUE(intake.holder(0)->Push("backlog" + std::to_string(i)).ok());
  }
  gate->store(true, std::memory_order_release);
  intake.Join();

  size_t total = 0;
  for (size_t p = 0; p < intake.partition_count(); ++p) {
    total += intake.holder(p)->stats().records_in;
  }
  *total_out = total;
  return intake.holder(0)->stats().records_in - kPrefill;  // routed to the hot node
}

TEST_F(ClusterHaTest, CongestionRoutingDrainsAroundTheHotPartition) {
  size_t total_cong = 0, total_rr = 0;
  const size_t hot_cong = RunSkewedIntake(feed::RoutingPolicy::kCongestion, &total_cong);
  const size_t hot_rr = RunSkewedIntake(feed::RoutingPolicy::kRoundRobin, &total_rr);
  // Nothing lost either way: prefill + all routed records are in the holders.
  EXPECT_EQ(total_cong, 500u);
  EXPECT_EQ(total_rr, 500u);
  // Blind round-robin keeps hammering the deep partition (a third of the
  // stream); congestion-aware routing diverts past the slack.
  EXPECT_EQ(hot_rr, 100u);
  EXPECT_LT(hot_cong, 20u);
  EXPECT_LT(hot_cong, hot_rr);
}

TEST_F(ClusterHaTest, RoutingAvoidsSuspectNodesWithoutLosingRecords) {
  cluster::ClusterConfig cc;
  cc.nodes = 3;
  cc.mode = cluster::ExecutionMode::kThreads;
  cluster::Cluster cluster(cc);
  storage::Catalog catalog;
  feed::UdfRegistry udfs;
  feed::ActiveFeedManager afm(&cluster, &catalog, &udfs);
  ASSERT_TRUE(catalog
                  .CreateDatatype(adm::Datatype(
                      "T", {{"id", adm::FieldType::kInt64, false}}))
                  .ok());
  ASSERT_TRUE(catalog.CreateDataset("D", "T", "id").ok());
  ASSERT_TRUE(cluster.membership().SetState(1, NodeState::kSuspect).ok());

  auto records = std::make_shared<std::vector<std::string>>();
  for (int i = 0; i < 300; ++i) records->push_back("{\"id\": " + std::to_string(i) + "}");
  feed::ActiveFeedManager::StartArgs args;
  args.config.name = "AvoidSuspect";
  args.config.type_name = "T";
  args.config.batch_size = 60;
  args.connection.dataset = "D";
  args.adapter_factory = feed::MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm.StartFeed(std::move(args)).ok());
  auto stats = afm.WaitForFeedStats("AvoidSuspect");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(catalog.FindDataset("D")->LiveRecordCount(), 300u);
  // The suspect node's partition took no new traffic.
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetCounter("idea.intake.AvoidSuspect.p1.records_in")
                ->value(),
            0u);
}

// ---------------------------------------------------------------------------
// Kill-a-node chaos soak: contents must be bit-identical to a clean run.

struct SoakEnv {
  storage::Catalog catalog;
  feed::UdfRegistry udfs;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<feed::ActiveFeedManager> afm;

  SoakEnv() {
    cluster::ClusterConfig cc;
    cc.nodes = 3;
    cc.mode = cluster::ExecutionMode::kThreads;
    cluster = std::make_unique<cluster::Cluster>(cc);
    afm = std::make_unique<feed::ActiveFeedManager>(cluster.get(), &catalog, &udfs);
    EXPECT_TRUE(catalog
                    .CreateDatatype(adm::Datatype(
                        "T", {{"id", adm::FieldType::kInt64, false},
                              {"text", adm::FieldType::kString, false}}))
                    .ok());
    EXPECT_TRUE(catalog.CreateDataset("D", "T", "id").ok());
  }

  /// Runs one HA feed over `records` and returns the dataset's serialized
  /// contents (scan order is PK order, so equal vectors = identical stores).
  Result<std::vector<std::string>> RunFeed(
      std::shared_ptr<std::vector<std::string>> records) {
    feed::ActiveFeedManager::StartArgs args;
    args.config.name = "Soak";
    args.config.type_name = "T";
    args.config.batch_size = 48;
    args.config.ha_failover = true;
    args.config.holder_push_deadline_us = 5'000'000;
    args.connection.dataset = "D";
    args.adapter_factory = feed::MakeVectorAdapterFactory(records);
    IDEA_RETURN_NOT_OK(afm->StartFeed(std::move(args)));
    IDEA_RETURN_NOT_OK(afm->WaitForFeed("Soak"));
    std::vector<std::string> out;
    auto snapshot = catalog.FindDataset("D")->Scan();
    for (const adm::Value& v : *snapshot) out.push_back(v.ToString());
    return out;
  }
};

std::shared_ptr<std::vector<std::string>> SoakRecords(size_t n) {
  auto records = std::make_shared<std::vector<std::string>>();
  for (size_t i = 0; i < n; ++i) {
    records->push_back("{\"id\": " + std::to_string(i) + ", \"text\": \"payload-" +
                       std::to_string(i * 31 % 97) + "\"}");
  }
  return records;
}

TEST_F(ClusterHaTest, KillANodeSoakLeavesContentsBitIdentical) {
  auto records = SoakRecords(400);
  // Clean reference run: no faults.
  std::vector<std::string> reference;
  {
    SoakEnv env;
    auto got = env.RunFeed(records);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    reference = std::move(got).value();
  }
  ASSERT_EQ(reference.size(), 400u);

  // Chaos rounds: each arms node.kill at a randomized liveness-probe hit, so
  // the victim node and the pipeline stage it dies in vary per round. The
  // feed must fail over and converge to the exact same contents.
  Rng rng(0xC1A05u);
  for (int round = 0; round < 5; ++round) {
    const uint64_t kill_at = 1 + rng.NextBelow(24);
    FaultInjector::Default().Reseed(1000 + round);
    FaultInjector::Default().Arm("node.kill", FaultSpec::Nth(kill_at));
    SoakEnv env;
    auto got = env.RunFeed(records);
    FaultInjector::Default().DisarmAll();
    ASSERT_TRUE(got.ok()) << "round " << round << " kill_at=" << kill_at << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, reference) << "round " << round << " kill_at=" << kill_at;
    EXPECT_EQ(env.catalog.FindDataset("D")->LiveRecordCount(), 400u);
  }
}

TEST_F(ClusterHaTest, FailoverStatsRecordTheRecoveryAndGovernorStaysBounded) {
  auto records = SoakRecords(400);
  FaultInjector::Default().Reseed(77);
  FaultInjector::Default().Arm("node.kill", FaultSpec::Nth(3));

  cluster::ClusterConfig cc;
  cc.nodes = 3;
  cc.mode = cluster::ExecutionMode::kThreads;
  cc.memgov.budget_bytes = 8192;  // tiny: force delay/spill admissions
  cc.memgov.max_delay_us = 200;
  cluster::Cluster cluster(cc);
  storage::Catalog catalog;
  feed::UdfRegistry udfs;
  feed::ActiveFeedManager afm(&cluster, &catalog, &udfs);
  ASSERT_TRUE(catalog
                  .CreateDatatype(adm::Datatype(
                      "T", {{"id", adm::FieldType::kInt64, false},
                            {"text", adm::FieldType::kString, false}}))
                  .ok());
  ASSERT_TRUE(catalog.CreateDataset("D", "T", "id").ok());

  feed::ActiveFeedManager::StartArgs args;
  args.config.name = "Stats";
  args.config.type_name = "T";
  args.config.batch_size = 48;
  args.config.ha_failover = true;
  args.config.holder_push_deadline_us = 5'000'000;
  args.connection.dataset = "D";
  args.adapter_factory = feed::MakeVectorAdapterFactory(records);
  ASSERT_TRUE(afm.StartFeed(std::move(args)).ok());
  auto stats = afm.WaitForFeedStats("Stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(catalog.FindDataset("D")->LiveRecordCount(), 400u);
  EXPECT_GE(stats->failovers, 1u);
  EXPECT_GT(stats->last_recovery_us, 0.0);
  // The governor's cardinal invariant: admission never pushes a node past
  // its budget, no matter how the failover shuffled the load.
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const auto gstats = cluster.node(n).memgov().Stats();
    EXPECT_LE(gstats.used_high_watermark, gstats.budget_bytes) << "node " << n;
  }
  // The admin surface reports the same plane.
  const std::string json = cluster.MemgovJson();
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace idea
