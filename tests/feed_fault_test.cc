// End-to-end failure handling: per-feed policies (abort / skip / dead-letter),
// transient-fault retries, holder abort/deadline propagation, and WAL
// crash-recovery — all driven by the deterministic fault-injection framework.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adm/json.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "feed/active_feed_manager.h"
#include "obs/flight_recorder.h"
#include "sqlpp/parser.h"
#include "workload/usecases.h"

namespace idea::feed {
namespace {

using adm::Value;
using common::FaultInjector;
using common::FaultSpec;

/// One self-contained pipeline environment (cluster + catalog + AFM +
/// tweet-safety schema). Built per run so determinism tests can replay the
/// exact same feed from scratch.
struct PipelineEnv {
  storage::Catalog catalog;
  UdfRegistry udfs;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<ActiveFeedManager> afm;

  PipelineEnv() {
    cluster::ClusterConfig cc;
    cc.nodes = 3;
    cc.mode = cluster::ExecutionMode::kThreads;
    cluster = std::make_unique<cluster::Cluster>(cc);
    afm = std::make_unique<ActiveFeedManager>(cluster.get(), &catalog, &udfs);

    EXPECT_TRUE(catalog
                    .CreateDatatype(adm::Datatype(
                        "TweetType", {{"id", adm::FieldType::kInt64, false},
                                      {"text", adm::FieldType::kString, false}}))
                    .ok());
    EXPECT_TRUE(catalog.CreateDataset("Tweets", "TweetType", "id").ok());
    EXPECT_TRUE(catalog.CreateDataset("EnrichedTweets", "TweetType", "id").ok());
    EXPECT_TRUE(catalog
                    .CreateDatatype(adm::Datatype("SensitiveWordType",
                                                  {{"wid", adm::FieldType::kString,
                                                    false}}))
                    .ok());
    EXPECT_TRUE(
        catalog.CreateDataset("SensitiveWords", "SensitiveWordType", "wid").ok());
    EXPECT_TRUE(catalog.FindDataset("SensitiveWords")
                    ->Upsert(adm::ParseJson(
                                 R"({"wid":"W1","country":"US","word":"bomb"})")
                                 .value())
                    .ok());
    auto fn = sqlpp::ParseStatement(workload::TweetSafetyCheckFunctionDdl());
    EXPECT_TRUE(fn.ok());
    sqlpp::SqlppFunctionDef def;
    def.name = fn->create_function.name;
    def.params = fn->create_function.params;
    def.body = std::shared_ptr<const sqlpp::SelectStatement>(
        std::move(fn->create_function.body));
    EXPECT_TRUE(udfs.RegisterSqlpp(std::move(def), false).ok());
  }
};

std::shared_ptr<std::vector<std::string>> MakeTweets(size_t n) {
  auto records = std::make_shared<std::vector<std::string>>();
  for (size_t i = 0; i < n; ++i) {
    std::string country = i % 2 == 0 ? "US" : "CA";
    std::string text = i % 4 == 0 ? "there is a bomb here" : "sunny day";
    records->push_back("{\"id\": " + std::to_string(i) + ", \"text\": \"" + text +
                       "\", \"country\": \"" + country + "\"}");
  }
  return records;
}

class FeedFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Default().DisarmAll();
    FaultInjector::Default().Reseed(0);
  }
};

TEST_F(FeedFaultTest, RetriesRecoverTransientUdfFaults) {
  PipelineEnv env;
  FaultInjector::Default().Reseed(42);
  FaultInjector::Default().Arm("compute.udf", FaultSpec::EveryNth(50));

  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.config.on_error = OnError::kDeadLetter;
  args.config.max_retries = 2;
  args.config.retry_backoff_us = 10;
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(400));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  auto stats = env.afm->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Every 50th evaluation fails once, but the failure is transient by
  // construction (a retry advances the hit counter), so retries recover every
  // record and nothing reaches the dead-letter queue.
  EXPECT_EQ(stats->records_ingested, 400u);
  EXPECT_GT(stats->retries, 0u);
  EXPECT_EQ(stats->dead_letters, 0u);
  EXPECT_EQ(env.afm->dead_letter_queue("F")->depth(), 0u);
  EXPECT_EQ(env.catalog.FindDataset("EnrichedTweets")->LiveRecordCount(), 400u);
}

TEST_F(FeedFaultTest, SkipPolicyDropsPoisonedRecordsAndKeepsTheFeedAlive) {
  PipelineEnv env;
  FaultInjector::Default().Reseed(42);
  FaultInjector::Default().Arm("compute.parse",
                               FaultSpec::Probability(0.05, StatusCode::kParseError));

  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.config.on_error = OnError::kSkip;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(400));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  auto stats = env.afm->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->records_skipped, 0u);
  EXPECT_EQ(stats->records_ingested + stats->records_skipped, 400u);
  EXPECT_EQ(stats->parse_errors, stats->records_skipped);
  EXPECT_EQ(env.catalog.FindDataset("Tweets")->LiveRecordCount(),
            stats->records_ingested);
}

TEST_F(FeedFaultTest, AbortPolicyFailsTheFeedWithoutDeadlocking) {
  PipelineEnv env;
  FaultInjector::Default().Arm("compute.udf", FaultSpec::Always());

  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  // on_error defaults to kAbort: the first (unretried) failure kills the feed.
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(300));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  // The wait must observe the injected failure — and return rather than
  // deadlock against producers blocked on poisoned holders.
  auto stats = env.afm->WaitForFeedStats("F");
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("injected fault"), std::string::npos)
      << stats.status().ToString();
}

TEST_F(FeedFaultTest, AbortedFeedWritesAParseablePostMortem) {
  PipelineEnv env;
  FaultInjector::Default().Arm("compute.udf", FaultSpec::Always());

  const std::string dir = ::testing::TempDir() + "/idea_postmortem";
  ActiveFeedManager::StartArgs args;
  args.config.name = "Doomed";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.config.post_mortem_dir = dir;  // on_error defaults to kAbort
  args.connection.dataset = "EnrichedTweets";
  args.connection.apply_function = "tweetSafetyCheck";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(300));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  ASSERT_FALSE(env.afm->WaitForFeedStats("Doomed").ok());

  // The abort left a single-line JSON post-mortem with the final metrics and
  // the flight-recorder story, ending in the feed's abort event.
  std::ifstream in(dir + "/Doomed.postmortem.json");
  ASSERT_TRUE(in.good()) << "missing " << dir << "/Doomed.postmortem.json";
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = adm::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetField("type")->AsString(), "postmortem");
  EXPECT_EQ(parsed->GetField("feed")->AsString(), "Doomed");
  EXPECT_NE(parsed->GetField("status")->AsString().find("injected fault"),
            std::string::npos);
  const Value* metrics = parsed->GetField("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetField("type")->AsString(), "metrics");
  ASSERT_NE(metrics->GetField("counters"), nullptr);
  const Value* flight = parsed->GetField("flight_recorder");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->GetField("type")->AsString(), "flight_recorder");
  bool saw_abort = false;
  for (const Value& ev : flight->GetField("events")->AsArray()) {
    if (ev.GetField("kind")->AsString() == "feed_abort" &&
        ev.GetField("scope")->AsString() == "Doomed") {
      saw_abort = true;
      EXPECT_NE(ev.GetField("detail")->AsString().find("injected fault"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_abort) << line;
  std::remove((dir + "/Doomed.postmortem.json").c_str());
}

TEST_F(FeedFaultTest, StorageFaultsFollowTheSkipPolicy) {
  PipelineEnv env;
  FaultInjector::Default().Arm("storage.apply", FaultSpec::Nth(5));

  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.config.on_error = OnError::kSkip;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(200));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  auto stats = env.afm->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Exactly one store attempt fails (no retries configured) and is skipped.
  EXPECT_EQ(stats->records_ingested, 199u);
  EXPECT_EQ(stats->records_skipped, 1u);
  EXPECT_EQ(env.catalog.FindDataset("Tweets")->LiveRecordCount(), 199u);
}

TEST_F(FeedFaultTest, StorageRetriesRecoverTransientApplyFaults) {
  PipelineEnv env;
  FaultInjector::Default().Arm("storage.apply", FaultSpec::EveryNth(25));

  ActiveFeedManager::StartArgs args;
  args.config.name = "F";
  args.config.type_name = "TweetType";
  args.config.batch_size = 60;
  args.config.on_error = OnError::kSkip;
  args.config.max_retries = 2;
  args.config.retry_backoff_us = 10;
  args.connection.dataset = "Tweets";
  args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(300));
  ASSERT_TRUE(env.afm->StartFeed(std::move(args)).ok());
  auto stats = env.afm->WaitForFeedStats("F");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 300u);
  EXPECT_EQ(stats->records_skipped, 0u);
  EXPECT_GT(stats->retries, 0u);
  EXPECT_EQ(env.catalog.FindDataset("Tweets")->LiveRecordCount(), 300u);
}

/// The PR's headline acceptance scenario: 1% of parses fail deterministically
/// and every 50th UDF evaluation fails transiently; under
/// `on_error: dead-letter, max_retries: 2` the feed survives, accounts for
/// every input record exactly once, and the dead-letter queue is a pure
/// function of the seed.
TEST_F(FeedFaultTest, DeadLetterPolicySurvivesMixedFaultsAndIsSeedReproducible) {
  auto run_once = [](std::vector<std::string>* dlq_raws) -> FeedRuntimeStats {
    PipelineEnv env;
    FaultInjector::Default().Reseed(42);
    FaultInjector::Default().Arm(
        "compute.parse", FaultSpec::Probability(0.01, StatusCode::kParseError));
    FaultInjector::Default().Arm("compute.udf", FaultSpec::EveryNth(50));

    ActiveFeedManager::StartArgs args;
    args.config.name = "F";
    args.config.type_name = "TweetType";
    args.config.batch_size = 60;
    args.config.on_error = OnError::kDeadLetter;
    args.config.max_retries = 2;
    args.config.retry_backoff_us = 10;
    args.connection.dataset = "EnrichedTweets";
    args.connection.apply_function = "tweetSafetyCheck";
    args.adapter_factory = MakeVectorAdapterFactory(MakeTweets(2000));
    EXPECT_TRUE(env.afm->StartFeed(std::move(args)).ok());
    auto stats = env.afm->WaitForFeedStats("F");
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();

    auto dlq = env.afm->dead_letter_queue("F");
    EXPECT_NE(dlq, nullptr);
    const uint64_t dlq_depth = dlq->depth();

    // Exact accounting: every input record is either stored or parked.
    EXPECT_EQ(stats->records_ingested + dlq_depth, 2000u);
    EXPECT_GT(dlq_depth, 0u);       // ~20 poisoned parses
    EXPECT_GT(stats->retries, 0u);  // the transient UDF faults were retried
    // No record stored twice: ids are unique, so the live count must equal
    // the ingested count exactly.
    EXPECT_EQ(env.catalog.FindDataset("EnrichedTweets")->LiveRecordCount(),
              stats->records_ingested);

    for (const DeadLetter& letter : dlq->Drain()) {
      EXPECT_EQ(letter.stage, "parse");  // UDF faults all recovered via retry
      dlq_raws->push_back(letter.raw);
    }
    std::sort(dlq_raws->begin(), dlq_raws->end());
    return *stats;
  };

  std::vector<std::string> first_dlq, second_dlq;
  FeedRuntimeStats first = run_once(&first_dlq);
  FeedRuntimeStats second = run_once(&second_dlq);
  // Same seed => identical poisoned-record set, independent of thread
  // interleaving (keyed fault decisions hash seed ^ record content).
  EXPECT_EQ(first_dlq, second_dlq);
  EXPECT_EQ(first.records_ingested, second.records_ingested);
}

TEST_F(FeedFaultTest, DeadLetterQueueIsDrainableAndBounded) {
  DeadLetterQueue dlq("F", /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    dlq.Add(DeadLetter{"r" + std::to_string(i), "parse",
                       Status::Internal("injected"), 0});
  }
  EXPECT_EQ(dlq.depth(), 3u);
  EXPECT_EQ(dlq.enqueued(), 5u);
  EXPECT_EQ(dlq.dropped(), 2u);  // oldest two evicted
  std::vector<DeadLetter> letters = dlq.Drain();
  ASSERT_EQ(letters.size(), 3u);
  EXPECT_EQ(letters[0].raw, "r2");
  EXPECT_EQ(letters[2].raw, "r4");
  EXPECT_EQ(dlq.depth(), 0u);
}

TEST_F(FeedFaultTest, HolderAbortUnblocksAStalledProducer) {
  runtime::StoragePartitionHolder holder(
      runtime::PartitionHolderId{"F", "storage", 0}, /*capacity=*/1);
  std::vector<Value> recs = {adm::ParseJson(R"({"id":1})").value()};
  ASSERT_TRUE(holder.Push(runtime::FrameRecords(recs, 1024)[0]).ok());

  Status blocked_result;
  std::thread producer([&] {
    // The holder is full and nothing pops: this push blocks until Abort.
    blocked_result = holder.Push(runtime::FrameRecords(recs, 1024)[0]);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  holder.Abort(Status::Internal("storage job died"));
  producer.join();
  ASSERT_FALSE(blocked_result.ok());
  EXPECT_NE(blocked_result.ToString().find("storage job died"), std::string::npos);
  // Aborted holders drop their queue and stop handing out frames.
  runtime::Frame out;
  EXPECT_FALSE(holder.Pop(&out));
  EXPECT_FALSE(holder.Push(runtime::FrameRecords(recs, 1024)[0]).ok());
}

TEST_F(FeedFaultTest, PushDeadlineTurnsADeadConsumerIntoTimedOut) {
  runtime::IntakePartitionHolder holder(
      runtime::PartitionHolderId{"F", "intake", 0}, /*capacity=*/2);
  holder.set_push_deadline_us(20 * 1000);
  ASSERT_TRUE(holder.Push("a").ok());
  ASSERT_TRUE(holder.Push("b").ok());
  Status st = holder.Push("c");  // full, nobody pulls
  EXPECT_EQ(st.code(), StatusCode::kTimedOut);
}

/// Crash-recovery soak: kill the storage engine between WAL append and
/// memtable apply at randomized points of a mixed upsert/delete workload,
/// then recover a fresh dataset from the survivor's WAL and require its
/// contents to be bit-identical to a crash-free run of the same prefix.
TEST_F(FeedFaultTest, WalCrashRecoveryIsIdempotentAtRandomKillPoints) {
  const adm::Datatype kType("T", {{"id", adm::FieldType::kInt64, false},
                                  {"v", adm::FieldType::kString, false}});

  // A deterministic workload of operations that all succeed when fault-free.
  struct Op {
    bool is_delete;
    int64_t id;
    std::string v;
  };
  std::vector<Op> ops;
  Rng rng(7);
  std::vector<int64_t> live;
  for (int i = 0; i < 160; ++i) {
    if (!live.empty() && rng.NextBool(0.2)) {
      size_t pick = rng.NextBelow(live.size());
      ops.push_back(Op{true, live[pick], ""});
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      // Mix fresh inserts and updates of live keys.
      int64_t id = (!live.empty() && rng.NextBool(0.3))
                       ? live[rng.NextBelow(live.size())]
                       : static_cast<int64_t>(1000 + i);
      if (std::find(live.begin(), live.end(), id) == live.end()) live.push_back(id);
      ops.push_back(Op{false, id, rng.NextAlpha(8)});
    }
  }
  auto apply = [](storage::LsmDataset* ds, const Op& op) -> Status {
    if (op.is_delete) return ds->Delete(Value::MakeInt(op.id));
    return ds->Upsert(Value::MakeObject(
        {{"id", Value::MakeInt(op.id)}, {"v", Value::MakeString(op.v)}}));
  };
  auto contents = [](storage::LsmDataset* ds) {
    std::vector<std::string> out;
    auto snapshot = ds->Scan();  // keep the snapshot alive across the loop
    for (const Value& rec : *snapshot) out.push_back(rec.ToString());
    return out;
  };

  Rng kill_rng(99);
  for (int round = 0; round < 8; ++round) {
    const size_t kill_at = 1 + kill_rng.NextBelow(ops.size());

    // Crash-free reference over the same prefix: ops[0..kill_at-1] complete;
    // the op that will crash mid-write in the faulty run commits here.
    storage::LsmDataset reference("ref", kType, "id");
    for (size_t i = 0; i < kill_at; ++i) ASSERT_TRUE(apply(&reference, ops[i]).ok());

    // Faulty run: the kill_at-th write crashes after its WAL append.
    FaultInjector::Default().Arm("lsm.apply",
                                 FaultSpec::Nth(kill_at, StatusCode::kInternal));
    storage::LsmDataset crashed("crash", kType, "id");
    size_t applied = 0;
    Status crash_status;
    while (applied < ops.size()) {
      crash_status = apply(&crashed, ops[applied]);
      ++applied;
      if (!crash_status.ok()) break;
    }
    FaultInjector::Default().DisarmAll();
    ASSERT_FALSE(crash_status.ok()) << "round " << round;
    ASSERT_EQ(applied, kill_at) << "round " << round;

    // Recovery: replay the crashed instance's WAL — which includes the
    // half-applied final write — into a fresh dataset.
    auto wal = crashed.ReadWal();
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_EQ(wal->size(), kill_at);  // every attempted write reached the log
    storage::LsmDataset recovered("rec", kType, "id");
    ASSERT_TRUE(recovered.ReplayWalRecords(*wal).ok());

    EXPECT_EQ(contents(&recovered), contents(&reference)) << "round " << round;

    // PK-idempotence: replaying the same log again must not change anything.
    ASSERT_TRUE(recovered.ReplayWalRecords(*wal).ok());
    EXPECT_EQ(contents(&recovered), contents(&reference)) << "round " << round;
  }

  // The soak's story survives in the flight recorder: every kill point fired
  // a fault event and every replay logged a recovery. The dump must be
  // parseable offline (the crash post-mortem contract).
  const std::string dump_path = ::testing::TempDir() + "/wal_soak_flight.json";
  ASSERT_TRUE(obs::FlightRecorder::Default().DumpToFile(dump_path).ok());
  std::ifstream in(dump_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = adm::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  size_t fault_fires = 0, recoveries = 0;
  for (const Value& ev : parsed->GetField("events")->AsArray()) {
    const std::string kind = ev.GetField("kind")->AsString();
    if (kind == "fault_fire" && ev.GetField("scope")->AsString() == "lsm.apply") {
      ++fault_fires;
    }
    if (kind == "wal_recovery" && ev.GetField("scope")->AsString() == "rec") {
      ++recoveries;
    }
  }
  EXPECT_GE(fault_fires, 8u) << line.substr(0, 500);
  EXPECT_GE(recoveries, 16u) << line.substr(0, 500);  // two replays per round
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace idea::feed
