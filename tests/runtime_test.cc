#include <gtest/gtest.h>

#include <thread>

#include "adm/json.h"
#include "runtime/connectors.h"
#include "runtime/frame.h"
#include "runtime/job_executor.h"
#include "runtime/partition_holder.h"
#include "runtime/predeployed.h"
#include "storage/catalog.h"

namespace idea::runtime {
namespace {

using adm::Value;

Value Rec(int64_t id, const std::string& country) {
  return Value::MakeObject({{"id", Value::MakeInt(id)},
                            {"country", Value::MakeString(country)}});
}

TEST(FrameTest, AppendDecodeRoundTrip) {
  Frame f;
  f.Append(Rec(1, "US"));
  f.Append(Rec(2, "FR"));
  EXPECT_EQ(f.record_count(), 2u);
  std::vector<Value> out;
  ASSERT_TRUE(f.Decode(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].GetField("country")->AsString(), "FR");
}

TEST(FrameTest, FrameRecordsSplitsBySize) {
  std::vector<Value> records;
  for (int i = 0; i < 100; ++i) records.push_back(Rec(i, std::string(100, 'x')));
  auto frames = FrameRecords(records, 1024);
  EXPECT_GT(frames.size(), 5u);
  size_t total = 0;
  for (const auto& f : frames) total += f.record_count();
  EXPECT_EQ(total, 100u);
}

TEST(FrameQueueTest, PushPopOrder) {
  FrameQueue q(4);
  Frame a;
  a.Append(Rec(1, "a"));
  ASSERT_TRUE(q.Push(std::move(a)).ok());
  Frame out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.record_count(), 1u);
  EXPECT_EQ(q.records_pushed(), 1u);
}

TEST(FrameQueueTest, CloseDrainsThenEnds) {
  FrameQueue q(4);
  Frame a;
  a.Append(Rec(1, "a"));
  ASSERT_TRUE(q.Push(std::move(a)).ok());
  q.Close();
  Frame out;
  EXPECT_TRUE(q.Pop(&out));   // drains remaining frame
  EXPECT_FALSE(q.Pop(&out));  // then reports exhaustion
  EXPECT_FALSE(q.Push(Frame()).ok());
}

TEST(FrameQueueTest, BlockingPushUnblocksOnPop) {
  FrameQueue q(1);
  ASSERT_TRUE(q.Push(Frame()).ok());
  std::thread t([&] {
    Frame f;
    EXPECT_TRUE(q.Push(std::move(f)).ok());  // blocks until main pops
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Frame out;
  EXPECT_TRUE(q.Pop(&out));
  t.join();
  EXPECT_EQ(q.size(), 1u);
}

TEST(RouterTest, RoundRobinBalances) {
  std::vector<std::shared_ptr<FrameQueue>> targets;
  for (int i = 0; i < 3; ++i) targets.push_back(std::make_shared<FrameQueue>());
  Router router(ConnectorType::kRoundRobin, targets, 0, nullptr, /*frame_bytes=*/1);
  for (int i = 0; i < 99; ++i) ASSERT_TRUE(router.RouteRecord(Rec(i, "x")).ok());
  ASSERT_TRUE(router.Flush().ok());
  for (const auto& t : targets) EXPECT_EQ(t->records_pushed(), 33u);
}

TEST(RouterTest, HashIsConsistentByKey) {
  std::vector<std::shared_ptr<FrameQueue>> targets;
  for (int i = 0; i < 4; ++i) targets.push_back(std::make_shared<FrameQueue>());
  KeyExtractor key = [](const Value& v) { return v.GetFieldOrMissing("country"); };
  Router router(ConnectorType::kHashPartition, targets, 0, key, 1);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(router.RouteRecord(Rec(i, i % 2 == 0 ? "US" : "FR")).ok());
  }
  ASSERT_TRUE(router.Flush().ok());
  // Each key lands in exactly one queue; two keys -> at most two queues used.
  int used = 0;
  for (const auto& t : targets) used += t->records_pushed() > 0 ? 1 : 0;
  EXPECT_LE(used, 2);
  uint64_t total = 0;
  for (const auto& t : targets) total += t->records_pushed();
  EXPECT_EQ(total, 40u);
}

TEST(RouterTest, BroadcastReachesAllTargets) {
  std::vector<std::shared_ptr<FrameQueue>> targets;
  for (int i = 0; i < 3; ++i) targets.push_back(std::make_shared<FrameQueue>());
  Router router(ConnectorType::kBroadcast, targets, 0, nullptr, 1);
  ASSERT_TRUE(router.RouteRecord(Rec(1, "x")).ok());
  ASSERT_TRUE(router.Flush().ok());
  for (const auto& t : targets) EXPECT_EQ(t->records_pushed(), 1u);
}

// Figure 2: SELECT t.country, COUNT(*) FROM Tweets t GROUP BY t.country as a
// partitioned job: scan -> local group-by -> (hash) -> global group-by ->
// collector.
TEST(JobExecutorTest, Figure2GroupByJob) {
  auto records = std::make_shared<std::vector<Value>>();
  for (int i = 0; i < 300; ++i) {
    records->push_back(Rec(i, i % 3 == 0 ? "US" : (i % 3 == 1 ? "FR" : "JP")));
  }
  auto output = std::make_shared<CollectorSink::Output>();

  auto country_key = [](const Value& v) { return v.GetFieldOrMissing("country"); };
  JobSpecification spec;
  spec.name = "fig2";
  spec.Source([&](const OperatorContext&) -> Result<std::unique_ptr<SourceOperator>> {
    return std::unique_ptr<SourceOperator>(std::make_unique<VectorSource>(records));
  });
  spec.Stage("local-groupby", ConnectorType::kOneToOne,
             [&](const OperatorContext&) -> Result<std::unique_ptr<Operator>> {
               return std::unique_ptr<Operator>(std::make_unique<GroupByOperator>(
                   "country", country_key,
                   std::vector<AggSpec>{{"num", AggKind::kCount, nullptr}}));
             });
  spec.Stage("global-groupby", ConnectorType::kHashPartition,
             [&](const OperatorContext&) -> Result<std::unique_ptr<Operator>> {
               return std::unique_ptr<Operator>(std::make_unique<GroupByOperator>(
                   "country", country_key,
                   std::vector<AggSpec>{
                       {"num", AggKind::kSum,
                        [](const Value& v) { return v.GetFieldOrMissing("num"); }}}));
             },
             country_key);
  spec.Stage("collector", ConnectorType::kOneToOne,
             [&](const OperatorContext&) -> Result<std::unique_ptr<Operator>> {
               return std::unique_ptr<Operator>(std::make_unique<CollectorSink>(output));
             });

  OperatorContext base;
  JobExecutor executor(/*partitions=*/3, base);
  auto stats = executor.Run(spec);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->source_records, 300u);
  ASSERT_EQ(output->records.size(), 3u);
  for (const auto& row : output->records) {
    EXPECT_EQ(row.GetField("num")->AsInt(), 100);
  }
  EXPECT_EQ(spec.Describe(),
            "fig2: source =(one-to-one)=> local-groupby =(hash-partition)=> "
            "global-groupby =(one-to-one)=> collector");
}

TEST(JobExecutorTest, InsertJobWritesDataset) {
  storage::Catalog catalog;
  ASSERT_TRUE(catalog
                  .CreateDatatype(adm::Datatype(
                      "T", {{"id", adm::FieldType::kInt64, false}}))
                  .ok());
  ASSERT_TRUE(catalog.CreateDataset("Out", "T", "id").ok());
  auto records = std::make_shared<std::vector<Value>>();
  for (int i = 0; i < 50; ++i) records->push_back(Rec(i, "US"));

  JobSpecification spec;
  spec.name = "insert";
  spec.Source([&](const OperatorContext&) -> Result<std::unique_ptr<SourceOperator>> {
    return std::unique_ptr<SourceOperator>(std::make_unique<VectorSource>(records));
  });
  spec.Stage("insert", ConnectorType::kHashPartition,
             [&](const OperatorContext&) -> Result<std::unique_ptr<Operator>> {
               return std::unique_ptr<Operator>(
                   std::make_unique<InsertOperator>(catalog.FindDataset("Out"), true));
             },
             [](const Value& v) { return v.GetFieldOrMissing("id"); });
  OperatorContext base;
  JobExecutor executor(2, base);
  ASSERT_TRUE(executor.Run(spec).ok());
  EXPECT_EQ(catalog.FindDataset("Out")->LiveRecordCount(), 50u);
  EXPECT_GT(catalog.FindDataset("Out")->wal_stats().flushes, 0u);
}

TEST(JobExecutorTest, ErrorsPropagate) {
  auto records = std::make_shared<std::vector<Value>>();
  records->push_back(Rec(1, "x"));
  JobSpecification spec;
  spec.name = "failing";
  spec.Source([&](const OperatorContext&) -> Result<std::unique_ptr<SourceOperator>> {
    return std::unique_ptr<SourceOperator>(std::make_unique<VectorSource>(records));
  });
  spec.Stage("boom", ConnectorType::kOneToOne,
             [&](const OperatorContext&) -> Result<std::unique_ptr<Operator>> {
               return std::unique_ptr<Operator>(std::make_unique<TransformOperator>(
                   [](const Value&) -> Result<Value> {
                     return Status::Internal("kaboom");
                   }));
             });
  OperatorContext base;
  JobExecutor executor(2, base);
  auto r = executor.Run(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(PartitionHolderTest, IntakePullBatchBlocksUntilFull) {
  IntakePartitionHolder holder({"f", "intake", 0});
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(holder.Push("rec" + std::to_string(i)).ok());
  });
  std::vector<std::string> batch;
  EXPECT_TRUE(holder.PullBatch(10, &batch));
  EXPECT_EQ(batch.size(), 10u);
  producer.join();
}

TEST(PartitionHolderTest, EofDeliversPartialBatch) {
  IntakePartitionHolder holder({"f", "intake", 0});
  ASSERT_TRUE(holder.Push("only").ok());
  holder.PushEof();
  std::vector<std::string> batch;
  EXPECT_TRUE(holder.PullBatch(100, &batch));  // partial batch on EOF (§6.1)
  EXPECT_EQ(batch.size(), 1u);
  batch.clear();
  EXPECT_FALSE(holder.PullBatch(100, &batch));  // exhausted
  EXPECT_TRUE(holder.ExhaustedForTest());
  EXPECT_FALSE(holder.Push("late").ok());
}

TEST(PartitionHolderTest, StorageHolderCloseSemantics) {
  StoragePartitionHolder holder({"f", "storage", 1});
  Frame f;
  f.Append(Rec(1, "x"));
  ASSERT_TRUE(holder.Push(std::move(f)).ok());
  holder.Close();
  Frame out;
  EXPECT_TRUE(holder.Pop(&out));
  EXPECT_FALSE(holder.Pop(&out));
  EXPECT_EQ(holder.stats().records_in, 1u);
  EXPECT_EQ(holder.stats().records_out, 1u);
}

TEST(PartitionHolderTest, QueueDepthGaugeIsExactAcrossOverlappingInstances) {
  // Regression: the gauge is maintained with +/- deltas, so two live holder
  // instances sharing a metric name (an abort/drain race, a relocation
  // overlap) report the *sum* of their depths. The old absolute Set() let an
  // aborting instance stomp the survivor's depth to zero — and a drain
  // racing an abort could walk the gauge negative, which the stats view then
  // clamped, silently masking the underflow.
  const PartitionHolderId id{"gauge-regress", "storage", 0};
  obs::Gauge* gauge =
      obs::MetricsRegistry::Default().GetGauge(id.MetricPrefix() + ".queue_depth");
  auto doomed = std::make_shared<StoragePartitionHolder>(id);
  auto survivor = std::make_shared<StoragePartitionHolder>(id);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(doomed->Push(Frame()).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(survivor->Push(Frame()).ok());
  EXPECT_EQ(gauge->value(), 5);

  // The doomed instance aborts: only its own contribution is walked back.
  doomed->Abort(Status::Aborted("node died"));
  EXPECT_EQ(gauge->value(), 2);
  EXPECT_EQ(survivor->stats().queue_depth, 2u);

  // Draining the survivor walks the gauge to exactly zero — not negative.
  survivor->Close();
  Frame f;
  size_t drained = 0;
  while (survivor->Pop(&f)) ++drained;
  EXPECT_EQ(drained, 2u);
  EXPECT_EQ(gauge->value(), 0);
}

TEST(PartitionHolderManagerTest, RegistryLifecycle) {
  PartitionHolderManager mgr;
  auto intake = std::make_shared<IntakePartitionHolder>(
      PartitionHolderId{"feed", "intake", 0});
  ASSERT_TRUE(mgr.RegisterIntake(intake).ok());
  EXPECT_EQ(mgr.RegisterIntake(intake).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mgr.FindIntake({"feed", "intake", 0}), intake);
  EXPECT_EQ(mgr.FindIntake({"feed", "intake", 1}), nullptr);
  ASSERT_TRUE(mgr.Unregister({"feed", "intake", 0}).ok());
  EXPECT_TRUE(mgr.Unregister({"feed", "intake", 0}).IsNotFound());
}

struct CountingArtifact : JobArtifact {
  int node;
};

TEST(PredeployedJobManagerTest, DeployInvokeUndeploy) {
  PredeployedJobManager mgr;
  int compiles = 0;
  ASSERT_TRUE(mgr.Deploy("job1", 3,
                         [&](size_t node) -> Result<std::unique_ptr<JobArtifact>> {
                           ++compiles;
                           auto a = std::make_unique<CountingArtifact>();
                           a->node = static_cast<int>(node);
                           return std::unique_ptr<JobArtifact>(std::move(a));
                         })
                  .ok());
  EXPECT_EQ(compiles, 3);  // compiled once per node at deploy time
  EXPECT_TRUE(mgr.IsDeployed("job1"));
  for (int i = 0; i < 10; ++i) mgr.RecordInvocation("job1");
  // Invocations do not recompile.
  EXPECT_EQ(compiles, 3);
  EXPECT_EQ(mgr.stats().invocations, 10u);
  auto* artifact = dynamic_cast<CountingArtifact*>(mgr.Get("job1", 2));
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->node, 2);
  EXPECT_EQ(mgr.Get("job1", 9), nullptr);
  ASSERT_TRUE(mgr.Undeploy("job1").ok());
  EXPECT_FALSE(mgr.IsDeployed("job1"));
  EXPECT_EQ(mgr.Get("job1", 0), nullptr);
}

}  // namespace
}  // namespace idea::runtime
