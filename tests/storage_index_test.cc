#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/btree_index.h"
#include "storage/lsm_dataset.h"
#include "storage/rtree_index.h"

namespace idea::storage {
namespace {

using adm::Point;
using adm::Rectangle;
using adm::Value;

TEST(BTreeIndexTest, InsertSearchRemove) {
  BTreeIndex idx("f");
  idx.Insert(Value::MakeString("a"), Value::MakeInt(1));
  idx.Insert(Value::MakeString("a"), Value::MakeInt(2));
  idx.Insert(Value::MakeString("b"), Value::MakeInt(3));
  std::vector<Value> out;
  idx.SearchEquals(Value::MakeString("a"), &out);
  EXPECT_EQ(out.size(), 2u);
  idx.Remove(Value::MakeString("a"), Value::MakeInt(1));
  out.clear();
  idx.SearchEquals(Value::MakeString("a"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].AsInt(), 2);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(BTreeIndexTest, RangeSearch) {
  BTreeIndex idx("f");
  for (int i = 0; i < 10; ++i) idx.Insert(Value::MakeInt(i), Value::MakeInt(i * 100));
  std::vector<Value> out;
  idx.SearchRange(Value::MakeInt(3), Value::MakeInt(6), &out);
  EXPECT_EQ(out.size(), 4u);
}

class RTreeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeProperty, SearchMatchesBruteForce) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 7);
  RTreeIndex idx("loc", /*max_entries=*/8);
  std::vector<std::pair<Point, int64_t>> ground_truth;
  for (size_t i = 0; i < n; ++i) {
    Point p{rng.NextDouble() * 100, rng.NextDouble() * 100};
    idx.Insert(Value::MakePoint(p), Value::MakeInt(static_cast<int64_t>(i)));
    ground_truth.emplace_back(p, static_cast<int64_t>(i));
  }
  EXPECT_EQ(idx.size(), n);
  EXPECT_TRUE(idx.CheckInvariants());
  for (int q = 0; q < 30; ++q) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    Rectangle query{{x, y}, {x + rng.NextDouble() * 20, y + rng.NextDouble() * 20}};
    std::vector<Value> found;
    idx.Search(query, &found);
    std::vector<int64_t> got;
    for (const auto& v : found) got.push_back(v.AsInt());
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (const auto& [p, id] : ground_truth) {
      if (adm::RectContainsPoint(query, p)) want.push_back(id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeProperty,
                         ::testing::Values(0, 1, 7, 8, 9, 64, 500, 2000));

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Rng rng(3);
  RTreeIndex idx("loc", 8);
  EXPECT_EQ(idx.Height(), 0u);
  for (int i = 0; i < 1000; ++i) {
    idx.Insert(Value::MakePoint({rng.NextDouble(), rng.NextDouble()}),
               Value::MakeInt(i));
  }
  EXPECT_GE(idx.Height(), 3u);
  EXPECT_LE(idx.Height(), 7u);
  EXPECT_TRUE(idx.CheckInvariants());
}

TEST(RTreeTest, RemoveMaintainsInvariants) {
  Rng rng(17);
  RTreeIndex idx("loc", 8);
  std::vector<std::pair<Point, int64_t>> items;
  for (int i = 0; i < 400; ++i) {
    Point p{rng.NextDouble() * 50, rng.NextDouble() * 50};
    idx.Insert(Value::MakePoint(p), Value::MakeInt(i));
    items.emplace_back(p, i);
  }
  // Remove every other item in random-ish order.
  for (size_t i = 0; i < items.size(); i += 2) {
    EXPECT_TRUE(idx.Remove(Value::MakePoint(items[i].first),
                           Value::MakeInt(items[i].second)));
  }
  EXPECT_EQ(idx.size(), items.size() / 2);
  EXPECT_TRUE(idx.CheckInvariants());
  // Removed entries are gone; kept entries remain findable.
  for (size_t i = 0; i < items.size(); ++i) {
    Rectangle q{items[i].first, items[i].first};
    std::vector<Value> found;
    idx.Search(q, &found);
    bool present = false;
    for (const auto& v : found) present |= v.AsInt() == items[i].second;
    EXPECT_EQ(present, i % 2 == 1) << i;
  }
}

TEST(RTreeTest, RemoveNonexistentReturnsFalse) {
  RTreeIndex idx("loc");
  idx.Insert(Value::MakePoint({1, 1}), Value::MakeInt(1));
  EXPECT_FALSE(idx.Remove(Value::MakePoint({2, 2}), Value::MakeInt(1)));
  EXPECT_FALSE(idx.Remove(Value::MakePoint({1, 1}), Value::MakeInt(9)));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(RTreeTest, IndexesRectanglesAndCircles) {
  RTreeIndex idx("geom");
  idx.Insert(Value::MakeRectangle({{0, 0}, {10, 10}}), Value::MakeString("rect"));
  idx.Insert(Value::MakeCircle({{20, 20}, 2}), Value::MakeString("circ"));
  idx.Insert(Value::MakeInt(5), Value::MakeString("ignored"));  // non-geometry
  EXPECT_EQ(idx.size(), 2u);
  std::vector<Value> found;
  idx.Search({{5, 5}, {6, 6}}, &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].AsString(), "rect");
  found.clear();
  idx.Search({{19, 19}, {21, 21}}, &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].AsString(), "circ");
}

TEST(LsmIndexMaintenanceTest, SecondaryIndexesFollowUpserts) {
  adm::Datatype type("T", {{"id", adm::FieldType::kInt64, false}});
  LsmDataset ds("d", type, "id");
  ASSERT_TRUE(ds.CreateIndex("byName", "name", "btree").ok());
  ASSERT_TRUE(ds.CreateIndex("byLoc", "loc", "rtree").ok());

  Value rec = Value::MakeObject({{"id", Value::MakeInt(1)},
                                 {"name", Value::MakeString("alpha")},
                                 {"loc", Value::MakePoint({5, 5})}});
  ASSERT_TRUE(ds.Upsert(rec).ok());

  std::vector<Value> out;
  ASSERT_TRUE(ds.ProbeIndexEquals("name", Value::MakeString("alpha"), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetField("id")->AsInt(), 1);

  // Upsert with a new name: the old index entry must disappear.
  Value rec2 = Value::MakeObject({{"id", Value::MakeInt(1)},
                                  {"name", Value::MakeString("beta")},
                                  {"loc", Value::MakePoint({7, 7})}});
  ASSERT_TRUE(ds.Upsert(rec2).ok());
  out.clear();
  ASSERT_TRUE(ds.ProbeIndexEquals("name", Value::MakeString("alpha"), &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(ds.ProbeIndexEquals("name", Value::MakeString("beta"), &out).ok());
  EXPECT_EQ(out.size(), 1u);

  // Spatial probe follows the moved location.
  out.clear();
  ASSERT_TRUE(ds.ProbeIndexMbr("loc", {{6, 6}, {8, 8}}, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  ASSERT_TRUE(ds.ProbeIndexMbr("loc", {{4, 4}, {6, 6}}, &out).ok());
  EXPECT_TRUE(out.empty());

  // Delete removes index entries.
  ASSERT_TRUE(ds.Delete(Value::MakeInt(1)).ok());
  out.clear();
  ASSERT_TRUE(ds.ProbeIndexEquals("name", Value::MakeString("beta"), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(LsmIndexMaintenanceTest, IndexBuildFromExistingData) {
  adm::Datatype type("T", {{"id", adm::FieldType::kInt64, false}});
  LsmDataset ds("d", type, "id");
  for (int64_t i = 0; i < 100; ++i) {
    Value rec = Value::MakeObject({{"id", Value::MakeInt(i)},
                                   {"bucket", Value::MakeInt(i % 10)}});
    ASSERT_TRUE(ds.Upsert(rec).ok());
  }
  ASSERT_TRUE(ds.CreateIndex("byBucket", "bucket", "btree").ok());
  std::vector<Value> out;
  ASSERT_TRUE(ds.ProbeIndexEquals("bucket", Value::MakeInt(3), &out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(ds.IndexKindOn("bucket"), "btree");
  EXPECT_TRUE(ds.HasIndexOn("bucket", /*spatial=*/false));
  EXPECT_FALSE(ds.HasIndexOn("bucket", /*spatial=*/true));
  EXPECT_TRUE(
      ds.CreateIndex("dup", "bucket", "btree").code() == StatusCode::kAlreadyExists);
  EXPECT_FALSE(ds.CreateIndex("bad", "x", "hash").ok());
}

}  // namespace
}  // namespace idea::storage
