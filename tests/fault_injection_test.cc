#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace idea::common {
namespace {

/// Every test arms points on the process-wide injector, so each one cleans up
/// behind itself to keep the suite order-independent.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Default().DisarmAll();
    FaultInjector::Default().Reseed(0);
  }
};

TEST_F(FaultInjectionTest, DisarmedPointIsTransparent) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(IDEA_FAULT_HIT("fi.disarmed").ok());
  }
  // A disarmed hit is not even counted — the guard short-circuits before the
  // point's bookkeeping.
  EXPECT_EQ(FaultInjector::Default().GetStats("fi.disarmed").hits, 0u);
  EXPECT_FALSE(FaultInjector::Default().GetStats("fi.disarmed").armed);
}

TEST_F(FaultInjectionTest, AlwaysTriggerFiresEveryHit) {
  FaultInjector::Default().Arm("fi.always", FaultSpec::Always(StatusCode::kInternal));
  for (int i = 0; i < 5; ++i) {
    Status st = IDEA_FAULT_HIT("fi.always");
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_NE(st.message().find("fi.always"), std::string::npos);
  }
  auto stats = FaultInjector::Default().GetStats("fi.always");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 5u);
}

TEST_F(FaultInjectionTest, NthTriggerFiresExactlyOnce) {
  FaultInjector::Default().Arm("fi.nth", FaultSpec::Nth(3, StatusCode::kCorruption));
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(!IDEA_FAULT_HIT("fi.nth").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false,
                                      false, false, false, false}));
}

TEST_F(FaultInjectionTest, EveryNthTriggerFiresPeriodically) {
  FaultInjector::Default().Arm("fi.every", FaultSpec::EveryNth(4));
  int fires = 0;
  for (int i = 1; i <= 20; ++i) {
    bool fired = !IDEA_FAULT_HIT("fi.every").ok();
    EXPECT_EQ(fired, i % 4 == 0) << "hit " << i;
    fires += fired;
  }
  EXPECT_EQ(fires, 5);
}

TEST_F(FaultInjectionTest, MaxFiresStopsInjectingButKeepsCounting) {
  FaultSpec spec = FaultSpec::Always();
  spec.max_fires = 2;
  FaultInjector::Default().Arm("fi.maxfires", spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += !IDEA_FAULT_HIT("fi.maxfires").ok();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(FaultInjector::Default().GetStats("fi.maxfires").hits, 10u);
}

TEST_F(FaultInjectionTest, DelayOnlyFaultReturnsOkAfterSleeping) {
  FaultInjector::Default().Arm("fi.delay", FaultSpec::Delay(100));
  EXPECT_TRUE(IDEA_FAULT_HIT("fi.delay").ok());
  EXPECT_EQ(FaultInjector::Default().GetStats("fi.delay").fires, 1u);
}

TEST_F(FaultInjectionTest, UnkeyedProbabilityIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector::Default().Reseed(seed);
    FaultInjector::Default().Arm("fi.prob", FaultSpec::Probability(0.3));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!IDEA_FAULT_HIT("fi.prob").ok());
    return fired;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 20u);  // ~60 expected; loose bounds, deterministic anyway
  EXPECT_LT(fires, 120u);
}

TEST_F(FaultInjectionTest, KeyedProbabilityDependsOnlyOnSeedAndPayload) {
  FaultInjector::Default().Reseed(7);
  FaultInjector::Default().Arm("fi.keyed", FaultSpec::Probability(0.2));
  auto poisoned = [](int n) {
    std::set<int> out;
    for (int i = 0; i < n; ++i) {
      std::string payload = "record-" + std::to_string(i);
      if (!IDEA_FAULT_HIT_KEYED("fi.keyed", payload).ok()) out.insert(i);
    }
    return out;
  };
  std::set<int> first = poisoned(500);
  // Same records hit again — in any order, from any thread — make the same
  // decisions; the fire set is a pure function of (seed, payload).
  std::set<int> second = poisoned(500);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 500u);

  FaultInjector::Default().Reseed(8);
  FaultInjector::Default().Arm("fi.keyed", FaultSpec::Probability(0.2));
  EXPECT_NE(poisoned(500), first);
}

TEST_F(FaultInjectionTest, KeyedDecisionsAreStableUnderConcurrency) {
  FaultInjector::Default().Reseed(11);
  FaultInjector::Default().Arm("fi.conc", FaultSpec::Probability(0.1));
  std::set<int> baseline;
  for (int i = 0; i < 300; ++i) {
    if (!IDEA_FAULT_HIT_KEYED("fi.conc", "k" + std::to_string(i)).ok()) {
      baseline.insert(i);
    }
  }
  std::vector<std::set<int>> per_thread(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < per_thread.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        if (!IDEA_FAULT_HIT_KEYED("fi.conc", "k" + std::to_string(i)).ok()) {
          per_thread[t].insert(i);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& got : per_thread) EXPECT_EQ(got, baseline);
}

TEST_F(FaultInjectionTest, ArmFromStringGrammar) {
  auto armed = FaultInjector::Default().ArmFromString(
      "seed=42; fi.s1=prob:0.01:parse_error, fi.s2=nth:100; "
      "fi.s3=every:5:timed_out:delay=10:max_fires=3; fi.s4=delay:50");
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_EQ(*armed, 4);
  EXPECT_EQ(FaultInjector::Default().seed(), 42u);
  EXPECT_TRUE(FaultInjector::Default().GetStats("fi.s1").armed);
  EXPECT_TRUE(FaultInjector::Default().GetStats("fi.s4").armed);

  // The injected code comes through the named trigger.
  for (int i = 0; i < 99; ++i) EXPECT_TRUE(IDEA_FAULT_HIT("fi.s2").ok());
  EXPECT_EQ(IDEA_FAULT_HIT("fi.s2").code(), StatusCode::kInternal);

  EXPECT_FALSE(FaultInjector::Default().ArmFromString("garbage").ok());
  EXPECT_FALSE(FaultInjector::Default().ArmFromString("p=prob:2.0").ok());
  EXPECT_FALSE(FaultInjector::Default().ArmFromString("p=nth").ok());
  EXPECT_FALSE(FaultInjector::Default().ArmFromString("p=always:bogus_code").ok());
}

TEST_F(FaultInjectionTest, DisarmAndRearmResetCounters) {
  FaultInjector::Default().Arm("fi.rearm", FaultSpec::Always());
  (void)IDEA_FAULT_HIT("fi.rearm");
  FaultInjector::Default().Disarm("fi.rearm");
  EXPECT_TRUE(IDEA_FAULT_HIT("fi.rearm").ok());
  EXPECT_EQ(FaultInjector::Default().GetStats("fi.rearm").hits, 1u);
  FaultInjector::Default().Arm("fi.rearm", FaultSpec::Nth(1));
  EXPECT_EQ(FaultInjector::Default().GetStats("fi.rearm").hits, 0u);
  EXPECT_FALSE(IDEA_FAULT_HIT("fi.rearm").ok());
}

TEST_F(FaultInjectionTest, StableHashAndBackoffAreDeterministic) {
  EXPECT_EQ(StableHash64("abc"), StableHash64("abc"));
  EXPECT_NE(StableHash64("abc"), StableHash64("abd"));

  for (uint32_t attempt = 0; attempt < 10; ++attempt) {
    uint64_t d = RetryBackoffMicros(1000, attempt, 99);
    EXPECT_EQ(d, RetryBackoffMicros(1000, attempt, 99));
    // Bounded exponential: jitter keeps delays in [base*2^min(a,6)/2, base*2^min(a,6)].
    uint64_t cap = 1000ull << (attempt < 6 ? attempt : 6);
    EXPECT_GE(d, cap / 2);
    EXPECT_LE(d, cap);
  }
  EXPECT_EQ(RetryBackoffMicros(0, 3, 99), 0u);
}

}  // namespace
}  // namespace idea::common
