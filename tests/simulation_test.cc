#include <gtest/gtest.h>

#include "feed/simulation.h"
#include "sqlpp/parser.h"
#include "workload/tweets.h"
#include "sqlpp/parser.h"
#include "workload/usecases.h"

namespace idea::feed {
namespace {

/// Fixture: catalog with tweet + SafetyRating schema and data, UDFs loaded.
class SimulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ApplyDdl(workload::TweetDdl());
    const auto& uc = workload::GetUseCase(workload::UseCaseId::kSafetyRating);
    ApplyDdl(uc.ddl);
    RegisterFunction(uc.function_ddl);
    sizes_ = workload::SimulatorScaleSizes().Scaled(0.1);
    ASSERT_TRUE(workload::LoadUseCaseData(&catalog_, uc, sizes_, 200, 1).ok());
    raw_ = *workload::TweetGenerator::GenerateJson(600, {.seed = 3, .country_domain = 200});
    tweet_type_ = catalog_.FindDatatype("TweetType");
  }

  void ApplyDdl(const std::string& script) {
    auto stmts = sqlpp::ParseScript(script);
    ASSERT_TRUE(stmts.ok());
    for (const auto& stmt : *stmts) {
      if (stmt.kind == sqlpp::StatementKind::kCreateType) {
        std::vector<adm::FieldSpec> fields;
        for (const auto& f : stmt.create_type.fields) {
          fields.push_back({f.name, *adm::FieldTypeFromName(f.type_name), f.optional});
        }
        (void)catalog_.CreateDatatype(adm::Datatype(stmt.create_type.name, fields));
      } else if (stmt.kind == sqlpp::StatementKind::kCreateDataset) {
        (void)catalog_.CreateDataset(stmt.create_dataset.name,
                                     stmt.create_dataset.type_name,
                                     stmt.create_dataset.primary_key);
      } else if (stmt.kind == sqlpp::StatementKind::kCreateIndex) {
        auto ds = catalog_.FindDataset(stmt.create_index.dataset);
        ASSERT_NE(ds, nullptr);
        (void)ds->CreateIndex(stmt.create_index.name, stmt.create_index.field,
                              stmt.create_index.index_type);
      }
    }
  }

  void RegisterFunction(const std::string& fn_ddl) {
    auto fn = sqlpp::ParseStatement(fn_ddl);
    ASSERT_TRUE(fn.ok());
    sqlpp::SqlppFunctionDef def;
    def.name = fn->create_function.name;
    def.params = fn->create_function.params;
    def.body = std::shared_ptr<const sqlpp::SelectStatement>(
        std::move(fn->create_function.body));
    ASSERT_TRUE(udfs_.RegisterSqlpp(std::move(def), false).ok());
  }

  SimReport MustRun(SimConfig config) {
    // Each run targets a fresh output dataset.
    static int counter = 0;
    std::string target = "SimOut" + std::to_string(counter++);
    EXPECT_TRUE(catalog_.CreateDataset(target, "TweetType", "id").ok());
    FeedSimulation sim(&catalog_, &udfs_);
    auto r = sim.Run(config, raw_, target, tweet_type_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : SimReport{};
  }

  storage::Catalog catalog_;
  UdfRegistry udfs_;
  workload::RefSizes sizes_;
  std::vector<std::string> raw_;
  const adm::Datatype* tweet_type_ = nullptr;
};

TEST_F(SimulationTest, DynamicIngestionStoresEverything) {
  SimConfig config;
  config.nodes = 4;
  config.batch_size = 100;
  SimReport report = MustRun(config);
  EXPECT_EQ(report.records, raw_.size());
  EXPECT_EQ(report.computing_jobs, 6u);  // 600 / 100
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.refresh_period_us, 0.0);
}

TEST_F(SimulationTest, EnrichmentActuallyHappens) {
  SimConfig config;
  config.nodes = 4;
  config.batch_size = 150;
  config.udf = "enrichTweetQ1";
  std::string target = "EnrichedTweets";
  FeedSimulation sim(&catalog_, &udfs_);
  auto report = sim.Run(config, raw_, target, tweet_type_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto snap = catalog_.FindDataset(target)->Scan();
  ASSERT_EQ(snap->size(), raw_.size());
  for (size_t i = 0; i < snap->size(); i += 97) {
    EXPECT_NE((*snap)[i].GetField("safety_rating"), nullptr);
  }
  EXPECT_FALSE(report->plan_explain.empty());
}

TEST_F(SimulationTest, LargerBatchesMeanFewerJobsAndLessOverhead) {
  SimConfig small;
  small.nodes = 6;
  small.batch_size = 50;
  small.udf = "enrichTweetQ1";
  SimConfig big = small;
  big.batch_size = 200;
  SimReport r_small = MustRun(small);
  SimReport r_big = MustRun(big);
  EXPECT_GT(r_small.computing_jobs, r_big.computing_jobs);
  EXPECT_GT(r_small.invoke_us, r_big.invoke_us);
  // Refresh period grows with batch size (Figure 26).
  EXPECT_GT(r_big.refresh_period_us, r_small.refresh_period_us);
}

TEST_F(SimulationTest, PredeployAblationAddsCompileCostPerJob) {
  SimConfig with;
  with.nodes = 4;
  with.batch_size = 100;
  SimConfig without = with;
  without.predeployed = false;
  SimReport a = MustRun(with);
  SimReport b = MustRun(without);
  EXPECT_GT(b.invoke_us, a.invoke_us);
  double extra = b.invoke_us - a.invoke_us;
  double expected = with.costs.compile_us * static_cast<double>(a.computing_jobs);
  EXPECT_NEAR(extra, expected, expected * 0.01);
}

TEST_F(SimulationTest, FusedInsertJobSerializesStorage) {
  SimConfig decoupled;
  decoupled.nodes = 4;
  decoupled.batch_size = 100;
  SimConfig fused = decoupled;
  fused.fused_insert_job = true;
  SimReport a = MustRun(decoupled);
  SimReport b = MustRun(fused);
  // Fusing folds the storage+log-flush time into the critical path (§5.2).
  EXPECT_GT(b.compute_us, a.compute_us);
}

TEST_F(SimulationTest, StaticPipelineRunsAndRejectsStatefulSqlpp) {
  SimConfig config;
  config.nodes = 4;
  config.dynamic = false;
  SimReport r = MustRun(config);
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_EQ(r.computing_jobs, 0u);  // one long coupled job, no invocations

  SimConfig bad = config;
  bad.udf = "enrichTweetQ1";  // stateful
  static int counter = 1000;
  std::string target = "SimOutX" + std::to_string(counter++);
  ASSERT_TRUE(catalog_.CreateDataset(target, "TweetType", "id").ok());
  FeedSimulation sim(&catalog_, &udfs_);
  auto err = sim.Run(bad, raw_, target, tweet_type_);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotSupported);
}

TEST_F(SimulationTest, BalancedIntakeDividesIntakeTime) {
  SimConfig single;
  single.nodes = 6;
  single.batch_size = 100;
  SimConfig balanced = single;
  balanced.balanced_intake = true;
  SimReport a = MustRun(single);
  SimReport b = MustRun(balanced);
  EXPECT_NEAR(b.intake_us, a.intake_us / 6.0, a.intake_us * 0.5);
}

TEST_F(SimulationTest, UpdateClientAppliesUpdatesInSimulatedTime) {
  SimConfig config;
  config.nodes = 4;
  config.batch_size = 50;
  config.udf = "enrichTweetQ1";
  config.update_dataset = "SafetyRatings";
  config.update_rate = 2000;  // high rate so short sims still update
  config.update_dataset_size = sizes_.safety_ratings;
  config.country_domain = 200;
  SimReport r = MustRun(config);
  EXPECT_GT(r.updates_applied, 0u);
  auto ds = catalog_.FindDataset("SafetyRatings");
  EXPECT_GT(ds->stats().upserts, sizes_.safety_ratings);
}

TEST_F(SimulationTest, MoreNodesReduceComputeShare) {
  SimConfig small;
  small.nodes = 2;
  small.batch_size = 200;
  small.udf = "enrichTweetQ1";
  small.balanced_intake = true;
  SimConfig big = small;
  big.nodes = 16;
  SimReport r2 = MustRun(small);
  SimReport r16 = MustRun(big);
  // Per-batch parallel work shrinks with N, but invocation overhead grows.
  EXPECT_GT(r16.invoke_us, r2.invoke_us);
  EXPECT_LT(r16.compute_us - r16.invoke_us, r2.compute_us - r2.invoke_us);
}

}  // namespace
}  // namespace idea::feed
