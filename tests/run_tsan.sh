#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the concurrency-heavy test
# binaries (runtime holders/executor, the worker-pool scheduler, the three-job
# feed pipeline, the fault-injection machinery, the observability primitives,
# and the admin server / sampler / flight-recorder telemetry plane). Usage:
#
#   tests/run_tsan.sh [build-dir [test-binary...]]
#
# With no test binaries, the default concurrency suite runs. Pass
# IDEA_SANITIZE=address (or undefined) through the same CMake option for an
# ASan/UBSan run.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"
shift $(( $# > 0 ? 1 : 0 ))

TESTS=("$@")
if [ ${#TESTS[@]} -eq 0 ]; then
  TESTS=(runtime_test scheduler_test feed_pipeline_test obs_test
         admin_server_test sqlpp_delta_refresh_test fault_injection_test
         feed_fault_test cluster_ha_test)
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIDEA_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TESTS[@]}"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
for t in "${TESTS[@]}"; do
  echo "== tsan: ${t} =="
  "${BUILD_DIR}/tests/${t}"
done
echo "tsan: all clean"
