#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the concurrency-heavy test
# binaries (runtime holders/executor, the worker-pool scheduler, the three-job
# feed pipeline, and the observability primitives). Usage:
#
#   tests/run_tsan.sh [build-dir]
#
# Pass IDEA_SANITIZE=address through the same CMake option for an ASan run.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DIDEA_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target runtime_test scheduler_test feed_pipeline_test obs_test \
           sqlpp_delta_refresh_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
for t in runtime_test scheduler_test feed_pipeline_test obs_test \
         sqlpp_delta_refresh_test; do
  echo "== tsan: ${t} =="
  "${BUILD_DIR}/tests/${t}"
done
echo "tsan: all clean"
