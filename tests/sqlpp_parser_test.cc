#include <gtest/gtest.h>

#include "sqlpp/lexer.h"
#include "sqlpp/parser.h"
#include "workload/usecases.h"

namespace idea::sqlpp {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT t.a, 'str' FROM ds WHERE x >= 1.5 AND y != 2;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().type, TokenType::kKeyword);
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select SeLeCt SELECT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword);
    EXPECT_EQ((*tokens)[i].text, "SELECT");
  }
}

TEST(LexerTest, LibraryQualifiedFunction) {
  auto tokens = Tokenize("testlib#removeSpecial(x)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "testlib#removeSpecial");
}

TEST(LexerTest, CommentsAndHints) {
  auto tokens = Tokenize("a -- comment\n /* block */ b /*+ skip-index */ c");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // a, b, hint, c, end
  EXPECT_EQ((*tokens)[2].type, TokenType::kHint);
  EXPECT_EQ((*tokens)[2].text, "skip-index");
}

TEST(LexerTest, StringsWithBothQuotes) {
  auto tokens = Tokenize(R"('ab' "cd" 'e\'f')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "ab");
  EXPECT_EQ((*tokens)[1].text, "cd");
  EXPECT_EQ((*tokens)[2].text, "e'f");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
  EXPECT_FALSE(Tokenize("/* unclosed").ok());
}

// ---------------------------------------------------------------------------

Statement MustParse(const std::string& text) {
  auto r = ParseStatement(text);
  EXPECT_TRUE(r.ok()) << text << "\n -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Statement{};
}

TEST(ParserTest, Figure1CreateTypeAndDataset) {
  Statement t = MustParse(R"(
    CREATE TYPE TweetType AS OPEN { id : int64, text: string };)");
  ASSERT_EQ(t.kind, StatementKind::kCreateType);
  EXPECT_EQ(t.create_type.name, "TweetType");
  ASSERT_EQ(t.create_type.fields.size(), 2u);
  EXPECT_EQ(t.create_type.fields[0].name, "id");
  EXPECT_EQ(t.create_type.fields[0].type_name, "int64");

  Statement d = MustParse("CREATE DATASET Tweets(TweetType) PRIMARY KEY id;");
  ASSERT_EQ(d.kind, StatementKind::kCreateDataset);
  EXPECT_EQ(d.create_dataset.primary_key, "id");
}

TEST(ParserTest, Figure3InsertConstant) {
  Statement s = MustParse(R"(
    INSERT INTO Tweets ([
      {"id":0, "text": "Let there be light"}
    ]);)");
  ASSERT_EQ(s.kind, StatementKind::kInsert);
  ASSERT_NE(s.insert.collection, nullptr);
  EXPECT_EQ(s.insert.collection->kind, ExprKind::kArrayConstructor);
}

TEST(ParserTest, Figure4CreateFeed) {
  Statement s = MustParse(R"(
    CREATE FEED TweetFeed WITH {
      "type-name" : "TweetType",
      "adapter-name": "socket_adapter",
      "format" : "JSON",
      "sockets": "127.0.0.1:10001",
      "address-type": "IP"
    };)");
  ASSERT_EQ(s.kind, StatementKind::kCreateFeed);
  EXPECT_EQ(s.create_feed.config.at("type-name"), "TweetType");
  EXPECT_EQ(s.create_feed.config.at("sockets"), "127.0.0.1:10001");

  Statement c = MustParse("CONNECT FEED TweetFeed TO DATASET Tweets;");
  EXPECT_EQ(c.connect_feed.dataset, "Tweets");
  Statement st = MustParse("START FEED TweetFeed;");
  EXPECT_EQ(st.kind, StatementKind::kStartFeed);
  Statement sp = MustParse("STOP FEED TweetFeed;");
  EXPECT_EQ(sp.kind, StatementKind::kStopFeed);
}

TEST(ParserTest, Figure6UsTweetSafetyCheck) {
  Statement s = MustParse(R"(
    CREATE FUNCTION USTweetSafetyCheck(tweet) {
      LET safety_check_flag =
        CASE tweet.country = "US" AND contains(tweet.text, "bomb")
          WHEN true THEN "Red" ELSE "Green"
        END
      SELECT tweet.*, safety_check_flag
    };)");
  ASSERT_EQ(s.kind, StatementKind::kCreateFunction);
  EXPECT_EQ(s.create_function.params, std::vector<std::string>{"tweet"});
  const SelectStatement& body = *s.create_function.body;
  ASSERT_EQ(body.lets.size(), 1u);
  EXPECT_TRUE(body.lets[0].pre_from);
  EXPECT_EQ(body.lets[0].expr->kind, ExprKind::kCase);
  ASSERT_EQ(body.projections.size(), 2u);
  EXPECT_TRUE(body.projections[0].star);
}

TEST(ParserTest, Figure9AnalyticalQuery) {
  Statement s = MustParse(R"(
    SELECT tweet.country Country, count(tweet) Num
    FROM Tweets tweet
    LET enrichedTweet = tweetSafetyCheck(tweet)[0]
    WHERE enrichedTweet.safety_check_flag = "Red"
    GROUP BY tweet.country;)");
  ASSERT_EQ(s.kind, StatementKind::kQuery);
  const SelectStatement& q = *s.query;
  ASSERT_EQ(q.projections.size(), 2u);
  EXPECT_EQ(q.projections[0].alias, "Country");
  EXPECT_EQ(q.projections[1].alias, "Num");
  ASSERT_EQ(q.lets.size(), 1u);
  EXPECT_FALSE(q.lets[0].pre_from);
  EXPECT_EQ(q.lets[0].expr->kind, ExprKind::kIndexAccess);
  ASSERT_EQ(q.group_by.size(), 1u);
}

TEST(ParserTest, Figure10InsertWithPreFromLet) {
  Statement s = MustParse(R"(
    INSERT INTO EnrichedTweets(
      LET TweetsBatch = ([{"id":0}, {"id":1}])
      SELECT VALUE tweetSafetyCheck(tweet)
      FROM TweetsBatch tweet
    );)");
  ASSERT_EQ(s.kind, StatementKind::kInsert);
  ASSERT_NE(s.insert.query, nullptr);
  ASSERT_EQ(s.insert.query->lets.size(), 1u);
  EXPECT_TRUE(s.insert.query->lets[0].pre_from);
  ASSERT_EQ(s.insert.query->from.size(), 1u);
  EXPECT_EQ(s.insert.query->from[0].dataset, "TweetsBatch");
}

TEST(ParserTest, Figure11NotInSubquery) {
  Statement s = MustParse(R"(
    INSERT INTO EnrichedTweets(
      SELECT VALUE tweetSafetyCheck(tweet)
      FROM Tweets tweet WHERE tweet.id NOT IN
        (SELECT VALUE enrichedTweet.id
         FROM EnrichedTweets enrichedTweet)
    );)");
  ASSERT_NE(s.insert.query, nullptr);
  ASSERT_NE(s.insert.query->where, nullptr);
  EXPECT_EQ(s.insert.query->where->kind, ExprKind::kUnary);
}

TEST(ParserTest, Figure12ConnectWithApply) {
  Statement s = MustParse(
      "CONNECT FEED TweetFeed TO DATASET EnrichedTweets APPLY FUNCTION "
      "USTweetSafetyCheck;");
  EXPECT_EQ(s.connect_feed.apply_function, "USTweetSafetyCheck");
}

TEST(ParserTest, Figure14FeedDatasource) {
  Statement s = MustParse(R"(
    INSERT INTO EnrichedTweets(
      SELECT VALUE tweetSafetyCheck(t)
      FROM FEED Tweets t);)");
  ASSERT_NE(s.insert.query, nullptr);
  EXPECT_EQ(s.insert.query->from[0].source, FromClause::Source::kFeed);
}

TEST(ParserTest, Figure18NestedSubqueryWithGroupOrderLimit) {
  Statement s = MustParse(workload::HighRiskTweetCheckFunctionDdl());
  ASSERT_EQ(s.kind, StatementKind::kCreateFunction);
  const Expr& case_expr = *s.create_function.body->lets[0].expr;
  ASSERT_EQ(case_expr.kind, ExprKind::kCase);
  const Expr& in_expr = *case_expr.case_operand;
  ASSERT_EQ(in_expr.kind, ExprKind::kIn);
  ASSERT_NE(in_expr.subquery, nullptr);
  EXPECT_EQ(in_expr.subquery->limit, 10);
  EXPECT_EQ(in_expr.subquery->group_by.size(), 1u);
  EXPECT_EQ(in_expr.subquery->order_by.size(), 1u);
}

TEST(ParserTest, CreateIndexVariants) {
  Statement s = MustParse("CREATE INDEX locIdx ON monumentList(monument_location) TYPE RTREE;");
  EXPECT_EQ(s.create_index.index_type, "rtree");
  Statement b = MustParse("CREATE INDEX cIdx ON SensitiveWords(country);");
  EXPECT_EQ(b.create_index.index_type, "btree");
}

TEST(ParserTest, SkipIndexHintOnFromItem) {
  Statement s = MustParse(workload::NaiveNearbyMonumentsFunctionDdl());
  const Expr& let = *s.create_function.body->lets[0].expr;
  ASSERT_EQ(let.kind, ExprKind::kSubquery);
  ASSERT_EQ(let.subquery->from.size(), 1u);
  EXPECT_TRUE(let.subquery->from[0].hints.skip_index);
}

TEST(ParserTest, EveryUseCaseFunctionParses) {
  for (const auto& uc : workload::AllUseCases()) {
    auto ddl = ParseScript(uc.ddl);
    EXPECT_TRUE(ddl.ok()) << uc.name << ": " << ddl.status().ToString();
    auto fn = ParseStatement(uc.function_ddl);
    ASSERT_TRUE(fn.ok()) << uc.name << ": " << fn.status().ToString();
    EXPECT_EQ(fn->kind, StatementKind::kCreateFunction);
    EXPECT_EQ(fn->create_function.name, uc.function_name);
  }
}

TEST(ParserTest, ScriptSplitsStatements) {
  auto stmts = ParseScript(workload::TweetDdl());
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, UpsertStatement) {
  Statement s = MustParse(R"(UPSERT INTO SensitiveWords ([{"wid": "W1"}]);)");
  EXPECT_EQ(s.kind, StatementKind::kUpsert);
  EXPECT_TRUE(s.insert.upsert);
}

TEST(ParserTest, DropStatements) {
  EXPECT_EQ(MustParse("DROP DATASET Tweets;").kind, StatementKind::kDropDataset);
  Statement s = MustParse("DROP FUNCTION f IF EXISTS;");
  EXPECT_EQ(s.kind, StatementKind::kDropFunction);
  EXPECT_TRUE(s.drop.if_exists);
}

class ParserErrorCase : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorCase, Rejected) {
  EXPECT_FALSE(ParseStatement(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorCase,
    ::testing::Values("SELECT", "CREATE DATASET x PRIMARY KEY id;",
                      "SELECT a FROM;", "INSERT INTO t;", "CREATE TYPE T AS {",
                      "FROM x SELECT", "SELECT a WHERE", "CONNECT FEED f;",
                      "SELECT CASE WHEN true END FROM d x;"));

TEST(ExpressionParseTest, Precedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT false");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kAnd);
  EXPECT_EQ((*e)->ToString(), "(((1 + (2 * 3)) = 7) AND NOT false)");
}

TEST(ExpressionParseTest, CloneAndEqualsAgree) {
  auto e = ParseExpression(
      "CASE x WHEN 1 THEN f(a.b, [1,2]) ELSE {\"k\": -y} END");
  ASSERT_TRUE(e.ok());
  ExprPtr copy = (*e)->Clone();
  EXPECT_TRUE(Expr::Equals(**e, *copy));
  copy->case_arms[0].then->args.clear();
  EXPECT_FALSE(Expr::Equals(**e, *copy));
}

}  // namespace
}  // namespace idea::sqlpp
