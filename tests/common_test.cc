#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/virtual_clock.h"

namespace idea {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kTypeMismatch); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  IDEA_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Aborted("no")).ok());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteBuffer buf;
  buf.PutVarint64(GetParam());
  ByteReader reader(buf.data(), buf.size());
  uint64_t out;
  ASSERT_TRUE(reader.GetVarint64(&out).ok());
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull,
                                           16384ull, 1ull << 32, (1ull << 63),
                                           ~0ull));

TEST(BytesTest, MixedRoundTrip) {
  ByteBuffer buf;
  buf.PutU8(7);
  buf.PutFixed32(0xDEADBEEF);
  buf.PutFixed64(0x0123456789ABCDEFull);
  buf.PutString("hello world");
  buf.PutDouble(3.25);
  ByteReader r(buf.data(), buf.size());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  std::string s;
  double d;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetFixed32(&u32).ok());
  ASSERT_TRUE(r.GetFixed64(&u64).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s, "hello world");
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ExhaustionIsCorruption) {
  ByteBuffer buf;
  buf.PutU8(1);
  ByteReader r(buf.data(), buf.size());
  uint64_t u64;
  EXPECT_EQ(r.GetFixed64(&u64).code(), StatusCode::kCorruption);
}

TEST(BytesTest, ZigZag) {
  const std::vector<int64_t> cases = {0,  1, -1, 63, -64, int64_t{1} << 40,
                                      -(int64_t{1} << 40), INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LT(ZigZagEncode(-1), 3u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = SplitString("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, RemoveNonAlpha) {
  EXPECT_EQ(RemoveNonAlpha("@ab_12Cd!"), "abCd");
  EXPECT_EQ(RemoveNonAlpha("1234"), "");
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "abcd"), 4);
}

TEST(EditDistanceTest, SymmetryProperty) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.NextAlpha(rng.NextBelow(12));
    std::string b = rng.NextAlpha(rng.NextBelow(12));
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, BoundedEarlyExitAgreesWithinBound) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.NextAlpha(4 + rng.NextBelow(8));
    std::string b = rng.NextAlpha(4 + rng.NextBelow(8));
    int exact = EditDistance(a, b);
    int bounded = EditDistance(a, b, 4);
    if (exact <= 4) {
      EXPECT_EQ(bounded, exact);
    } else {
      EXPECT_GT(bounded, 4);
    }
  }
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(ToLowerAscii("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%05zu", static_cast<size_t>(42)), "00042");
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  clock.Advance(10);
  clock.AdvanceTo(5);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.NowMicros(), 10);
  clock.AdvanceTo(30);
  EXPECT_DOUBLE_EQ(clock.NowMicros(), 30);
}

TEST(TimersTest, MeasurePositiveTime) {
  ThreadCpuTimer cpu;
  cpu.Start();
  volatile uint64_t x = 0;
  for (int i = 0; i < 2000000; ++i) x += static_cast<uint64_t>(i);
  EXPECT_GT(cpu.ElapsedMicros(), 0.0);
  WallTimer wall;
  wall.Start();
  EXPECT_GE(wall.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace idea
