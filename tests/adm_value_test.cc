#include <gtest/gtest.h>

#include "adm/value.h"
#include "common/rng.h"

namespace idea::adm {
namespace {

TEST(ValueTest, DefaultIsMissing) {
  Value v;
  EXPECT_TRUE(v.IsMissing());
  EXPECT_TRUE(v.IsUnknown());
}

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_TRUE(Value::MakeNull().IsNull());
  EXPECT_EQ(Value::MakeBool(true).AsBool(), true);
  EXPECT_EQ(Value::MakeInt(-5).AsInt(), -5);
  EXPECT_EQ(Value::MakeDouble(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::MakeString("hi").AsString(), "hi");
  EXPECT_EQ(Value::MakeDateTime({123}).AsDateTime().epoch_ms, 123);
  EXPECT_EQ(Value::MakeDuration({2, 500}).AsDuration().months, 2);
  EXPECT_EQ(Value::MakePoint({1, 2}).AsPoint().y, 2);
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(Value::MakeInt(3).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Value::MakeDouble(3.5).AsNumber(), 3.5);
}

TEST(ValueTest, ObjectFieldOperations) {
  Value obj = Value::MakeObject({{"a", Value::MakeInt(1)}});
  EXPECT_EQ(obj.GetField("a")->AsInt(), 1);
  EXPECT_EQ(obj.GetField("b"), nullptr);
  EXPECT_TRUE(obj.GetFieldOrMissing("b").IsMissing());
  obj.SetField("b", Value::MakeString("x"));
  EXPECT_EQ(obj.GetField("b")->AsString(), "x");
  obj.SetField("a", Value::MakeInt(2));  // replace keeps position
  EXPECT_EQ(obj.AsObject()[0].first, "a");
  EXPECT_EQ(obj.GetField("a")->AsInt(), 2);
  obj.RemoveField("a");
  EXPECT_EQ(obj.GetField("a"), nullptr);
  EXPECT_EQ(obj.FieldCount(), 1u);
}

TEST(ValueTest, FieldAccessOnNonObjectIsNull) {
  Value i = Value::MakeInt(1);
  EXPECT_EQ(i.GetField("x"), nullptr);
  EXPECT_TRUE(i.GetFieldOrMissing("x").IsMissing());
}

TEST(ValueCompareTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Compare(Value::MakeInt(5), Value::MakeDouble(5.0)), 0);
  EXPECT_LT(Value::Compare(Value::MakeInt(5), Value::MakeDouble(5.5)), 0);
  EXPECT_GT(Value::Compare(Value::MakeDouble(6.0), Value::MakeInt(5)), 0);
}

TEST(ValueCompareTest, TypeTagOrderForDistinctTypes) {
  // MISSING < NULL < bool < numbers < string ...
  EXPECT_LT(Value::Compare(Value::MakeMissing(), Value::MakeNull()), 0);
  EXPECT_LT(Value::Compare(Value::MakeNull(), Value::MakeBool(false)), 0);
  EXPECT_LT(Value::Compare(Value::MakeBool(true), Value::MakeInt(0)), 0);
  EXPECT_LT(Value::Compare(Value::MakeInt(999), Value::MakeString("")), 0);
}

TEST(ValueCompareTest, ArraysCompareLexicographically) {
  Value a = Value::MakeArray({Value::MakeInt(1), Value::MakeInt(2)});
  Value b = Value::MakeArray({Value::MakeInt(1), Value::MakeInt(3)});
  Value c = Value::MakeArray({Value::MakeInt(1)});
  EXPECT_LT(Value::Compare(a, b), 0);
  EXPECT_GT(Value::Compare(a, c), 0);
  EXPECT_EQ(Value::Compare(a, a), 0);
}

Value RandomValue(Rng* rng, int depth = 0);

Value RandomScalar(Rng* rng) {
  switch (rng->NextBelow(8)) {
    case 0:
      return Value::MakeNull();
    case 1:
      return Value::MakeBool(rng->NextBool(0.5));
    case 2:
      return Value::MakeInt(rng->NextInRange(-1000000, 1000000));
    case 3:
      return Value::MakeDouble(rng->NextDouble() * 100 - 50);
    case 4:
      return Value::MakeString(rng->NextAlpha(rng->NextBelow(12)));
    case 5:
      return Value::MakeDateTime({rng->NextInRange(-1000000, 1000000)});
    case 6:
      return Value::MakePoint({rng->NextDouble() * 10, rng->NextDouble() * 10});
    default:
      return Value::MakeDuration(
          {static_cast<int32_t>(rng->NextInRange(-50, 50)), rng->NextInRange(-9999, 9999)});
  }
}

Value RandomValue(Rng* rng, int depth) {
  if (depth < 2 && rng->NextBool(0.35)) {
    if (rng->NextBool(0.5)) {
      Array arr;
      size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) arr.push_back(RandomValue(rng, depth + 1));
      return Value::MakeArray(std::move(arr));
    }
    Fields fields;
    size_t n = rng->NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      fields.emplace_back("f" + std::to_string(i), RandomValue(rng, depth + 1));
    }
    return Value::MakeObject(std::move(fields));
  }
  return RandomScalar(rng);
}

class ValueOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderProperty, TotalOrderInvariants) {
  Rng rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 24; ++i) values.push_back(RandomValue(&rng));
  for (const Value& a : values) {
    EXPECT_EQ(Value::Compare(a, a), 0);  // reflexive equality
    for (const Value& b : values) {
      int ab = Value::Compare(a, b);
      int ba = Value::Compare(b, a);
      EXPECT_EQ(ab, -ba) << a.ToString() << " vs " << b.ToString();  // antisymmetry
      if (ab == 0) {
        // Hash consistency with equality.
        EXPECT_EQ(Value::Hash(a), Value::Hash(b));
      }
      for (const Value& c : values) {
        // Transitivity on the <= relation.
        if (ab <= 0 && Value::Compare(b, c) <= 0) {
          EXPECT_LE(Value::Compare(a, c), 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(ValueHashTest, IntAndDoubleCollideWhenEqual) {
  EXPECT_EQ(Value::Hash(Value::MakeInt(42)), Value::Hash(Value::MakeDouble(42.0)));
}

TEST(ValueTest, EstimateSizeGrowsWithContent) {
  Value small = Value::MakeString("a");
  Value big = Value::MakeString(std::string(1000, 'a'));
  EXPECT_GT(big.EstimateSize(), small.EstimateSize());
  Value nested = Value::MakeObject({{"x", big}});
  EXPECT_GT(nested.EstimateSize(), big.EstimateSize());
}

}  // namespace
}  // namespace idea::adm
