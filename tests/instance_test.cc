#include <gtest/gtest.h>

#include "idea.h"
#include "workload/native_udfs.h"
#include "workload/tweets.h"
#include "workload/usecases.h"

namespace idea {
namespace {

using adm::Value;

InstanceOptions SmallCluster() {
  InstanceOptions opts;
  opts.cluster.nodes = 2;
  opts.cluster.mode = cluster::ExecutionMode::kThreads;
  return opts;
}

TEST(InstanceTest, Figure1And3CreateInsertQuery) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(R"(
    CREATE TYPE TweetType AS OPEN { id : int64, text: string };
    CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
    INSERT INTO Tweets ([{"id":0, "text": "Let there be light"}]);
  )").ok());
  auto rows = db.ExecuteSqlpp("SELECT VALUE t.text FROM Tweets t;");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].AsString(), "Let there be light");
}

TEST(InstanceTest, DuplicateDdlFails) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  EXPECT_FALSE(db.ExecuteScript(workload::TweetDdl()).ok());
  EXPECT_FALSE(db.ExecuteSqlpp("CREATE DATASET X(NoType) PRIMARY KEY id;").ok());
}

TEST(InstanceTest, InsertRejectsDuplicateKeysButUpsertReplaces) {
  Instance db(SmallCluster());
  // A minimal schema (TweetDdl's type also requires country/location/time).
  ASSERT_TRUE(db.ExecuteScript(R"(
    CREATE TYPE MiniTweet AS OPEN { id: int64, text: string };
    CREATE DATASET Tweets(MiniTweet) PRIMARY KEY id;
  )").ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(INSERT INTO Tweets ([{"id": 1, "text": "a"}]);)").ok());
  EXPECT_FALSE(db.ExecuteSqlpp(R"(INSERT INTO Tweets ([{"id": 1, "text": "b"}]);)").ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(UPSERT INTO Tweets ([{"id": 1, "text": "c"}]);)").ok());
  auto rows = db.ExecuteSqlpp("SELECT VALUE t.text FROM Tweets t WHERE t.id = 1;");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].AsString(), "c");
}

TEST(InstanceTest, Figure6UdfAppliedInQuery) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(
    CREATE FUNCTION USTweetSafetyCheck(tweet) {
      LET safety_check_flag =
        CASE tweet.country = "US" AND contains(tweet.text, "bomb")
          WHEN true THEN "Red" ELSE "Green" END
      SELECT tweet.*, safety_check_flag
    };)").ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(INSERT INTO Tweets ([
    {"id": 1, "text": "bomb threat", "country": "US", "latitude": 1.0, "longitude": 1.0,
     "created_at": "2019-01-01T00:00:00Z"},
    {"id": 2, "text": "nice day", "country": "US", "latitude": 1.0, "longitude": 1.0,
     "created_at": "2019-01-01T00:00:00Z"}
  ]);)").ok());
  auto rows = db.ExecuteSqlpp(
      "SELECT VALUE USTweetSafetyCheck(t)[0].safety_check_flag FROM Tweets t "
      "ORDER BY t.id;");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].AsString(), "Red");
  EXPECT_EQ((*rows)[1].AsString(), "Green");
}

TEST(InstanceTest, Figure9AnalyticalQueryEndToEnd) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(workload::SensitiveWordsDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(workload::TweetSafetyCheckFunctionDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(UPSERT INTO SensitiveWords ([
    {"wid": "W1", "country": "US", "word": "bomb"},
    {"wid": "W2", "country": "FR", "word": "siege"}
  ]);)").ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(INSERT INTO Tweets ([
    {"id": 1, "text": "a bomb", "country": "US", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"},
    {"id": 2, "text": "a bomb", "country": "FR", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"},
    {"id": 3, "text": "la siege", "country": "FR", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"},
    {"id": 4, "text": "calm", "country": "US", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"}
  ]);)").ok());
  auto rows = db.ExecuteSqlpp(R"(
    SELECT tweet.country Country, count(tweet) Num
    FROM Tweets tweet
    LET enrichedTweet = tweetSafetyCheck(tweet)[0]
    WHERE enrichedTweet.safety_check_flag = "Red"
    GROUP BY tweet.country
    ORDER BY tweet.country;)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].GetField("Country")->AsString(), "FR");
  EXPECT_EQ((*rows)[0].GetField("Num")->AsInt(), 1);
  EXPECT_EQ((*rows)[1].GetField("Country")->AsString(), "US");
  EXPECT_EQ((*rows)[1].GetField("Num")->AsInt(), 1);
}

TEST(InstanceTest, Figure10InsertEnrichedBatch) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(workload::SensitiveWordsDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(workload::TweetSafetyCheckFunctionDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(
    INSERT INTO EnrichedTweets(
      LET TweetsBatch = ([
        {"id": 0, "text": "x", "country": "US", "latitude": 0.0, "longitude": 0.0,
         "created_at": "2019-01-01T00:00:00Z"},
        {"id": 1, "text": "y", "country": "CA", "latitude": 0.0, "longitude": 0.0,
         "created_at": "2019-01-01T00:00:00Z"}
      ])
      SELECT VALUE tweetSafetyCheck(tweet)
      FROM TweetsBatch tweet
    );)").ok());
  auto rows = db.ExecuteSqlpp("SELECT VALUE count(t) FROM EnrichedTweets t;");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].AsInt(), 2);
}

TEST(InstanceTest, Figure11IncrementalEnrichInsert) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(workload::SensitiveWordsDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(workload::TweetSafetyCheckFunctionDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(INSERT INTO Tweets ([
    {"id": 1, "text": "a", "country": "US", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"},
    {"id": 2, "text": "b", "country": "US", "latitude": 0.0, "longitude": 0.0,
     "created_at": "2019-01-01T00:00:00Z"}
  ]);)").ok());
  const char* fig11 = R"(
    INSERT INTO EnrichedTweets(
      SELECT VALUE tweetSafetyCheck(tweet)
      FROM Tweets tweet WHERE tweet.id NOT IN
        (SELECT VALUE enrichedTweet.id FROM EnrichedTweets enrichedTweet)
    );)";
  ASSERT_TRUE(db.ExecuteSqlpp(fig11).ok());
  EXPECT_EQ((*db.ExecuteSqlpp("SELECT VALUE count(t) FROM EnrichedTweets t;"))[0].AsInt(),
            2);
  // Re-running it is a no-op (all ids already enriched).
  ASSERT_TRUE(db.ExecuteSqlpp(fig11).ok());
  EXPECT_EQ((*db.ExecuteSqlpp("SELECT VALUE count(t) FROM EnrichedTweets t;"))[0].AsInt(),
            2);
}

TEST(InstanceTest, Figure18HighRiskTweetCheck) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(workload::SensitiveWordsDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(workload::HighRiskTweetCheckFunctionDdl()).ok());
  // "US" gets 2 keywords, "CA" 1: top-10 list contains both here, so give a
  // country with zero keywords a Green flag.
  ASSERT_TRUE(db.ExecuteSqlpp(R"(UPSERT INTO SensitiveWords ([
    {"wid": "W1", "country": "US", "word": "bomb"},
    {"wid": "W2", "country": "US", "word": "raid"},
    {"wid": "W3", "country": "CA", "word": "siege"}
  ]);)").ok());
  auto rows = db.ExecuteSqlpp(R"(
    LET t = {"id": 1, "country": "US"}
    SELECT VALUE highRiskTweetCheck(t)[0].high_risk_flag;)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0].AsString(), "Red");
  rows = db.ExecuteSqlpp(R"(
    LET t = {"id": 1, "country": "ZZ"}
    SELECT VALUE highRiskTweetCheck(t)[0].high_risk_flag;)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].AsString(), "Green");
}

TEST(InstanceTest, Figure4FeedLifecycleViaSqlpp) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(R"(
    CREATE FEED TweetFeed WITH {
      "type-name" : "TweetType",
      "adapter-name": "socket_adapter",
      "format" : "JSON",
      "batch-size": "25"
    };
    CONNECT FEED TweetFeed TO DATASET Tweets;
  )").ok());
  // Swap the socket adapter for a generator (no network in unit tests).
  auto records = std::make_shared<std::vector<std::string>>();
  workload::TweetGenerator gen({.seed = 5, .country_domain = 50});
  for (int i = 0; i < 120; ++i) records->push_back(gen.NextJson());
  ASSERT_TRUE(db.SetFeedAdapterFactory("TweetFeed",
                                       feed::MakeVectorAdapterFactory(records))
                  .ok());
  ASSERT_TRUE(db.ExecuteSqlpp("START FEED TweetFeed;").ok());
  auto stats = db.WaitForFeed("TweetFeed");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 120u);
  EXPECT_EQ((*db.ExecuteSqlpp("SELECT VALUE count(t) FROM Tweets t;"))[0].AsInt(), 120);
}

TEST(InstanceTest, FeedWithAttachedUdfViaSqlpp) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(workload::SensitiveWordsDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(workload::TweetSafetyCheckFunctionDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp(R"(UPSERT INTO SensitiveWords ([
    {"wid": "W1", "country": "C00001", "word": "bomb"}
  ]);)").ok());
  ASSERT_TRUE(db.ExecuteScript(R"(
    CREATE FEED EnrichFeed WITH { "type-name": "TweetType", "batch-size": "20" };
    CONNECT FEED EnrichFeed TO DATASET EnrichedTweets APPLY FUNCTION tweetSafetyCheck;
  )").ok());
  auto records = std::make_shared<std::vector<std::string>>();
  workload::TweetGenerator gen({.seed = 11, .country_domain = 10});
  for (int i = 0; i < 60; ++i) records->push_back(gen.NextJson());
  ASSERT_TRUE(db.SetFeedAdapterFactory("EnrichFeed",
                                       feed::MakeVectorAdapterFactory(records))
                  .ok());
  ASSERT_TRUE(db.ExecuteSqlpp("START FEED EnrichFeed;").ok());
  ASSERT_TRUE(db.WaitForFeed("EnrichFeed").ok());
  auto rows = db.ExecuteSqlpp(
      "SELECT VALUE count(t) FROM EnrichedTweets t WHERE "
      "t.safety_check_flag = \"Red\" OR t.safety_check_flag = \"Green\";");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].AsInt(), 60);
}

TEST(InstanceTest, EveryUseCaseRunsEndToEnd) {
  std::string resource_dir = ::testing::TempDir();
  workload::RefSizes sizes = workload::SimulatorScaleSizes().Scaled(0.05);
  ASSERT_TRUE(workload::WriteNativeResources(resource_dir, sizes, 100, 1).ok());

  for (const auto& uc : workload::AllUseCases()) {
    Instance db(SmallCluster());
    ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
    ASSERT_TRUE(workload::RegisterNativeUdfs(&db.udfs(), resource_dir).ok());
    ASSERT_TRUE(db.ExecuteScript(uc.ddl).ok()) << uc.name;
    ASSERT_TRUE(db.ExecuteSqlpp(uc.function_ddl).ok()) << uc.name;
    ASSERT_TRUE(workload::LoadUseCaseData(&db.catalog(), uc, sizes, 100, 1).ok())
        << uc.name;

    // Feed 30 tweets through the dynamic framework with the UDF attached.
    auto records = std::make_shared<std::vector<std::string>>();
    workload::TweetGenerator gen({.seed = 21, .country_domain = 100});
    for (int i = 0; i < 30; ++i) records->push_back(gen.NextJson());
    ASSERT_TRUE(db.ExecuteScript(
                      "CREATE FEED UF WITH { \"type-name\": \"TweetType\", "
                      "\"batch-size\": \"10\" };"
                      "CONNECT FEED UF TO DATASET EnrichedTweets APPLY FUNCTION " +
                      uc.function_name + ";")
                    .ok())
        << uc.name;
    ASSERT_TRUE(
        db.SetFeedAdapterFactory("UF", feed::MakeVectorAdapterFactory(records)).ok());
    ASSERT_TRUE(db.ExecuteSqlpp("START FEED UF;").ok()) << uc.name;
    auto stats = db.WaitForFeed("UF");
    ASSERT_TRUE(stats.ok()) << uc.name << ": " << stats.status().ToString();
    EXPECT_EQ(stats->records_ingested, 30u) << uc.name;
    EXPECT_EQ(db.catalog().FindDataset("EnrichedTweets")->LiveRecordCount(), 30u)
        << uc.name;
  }
}

TEST(InstanceTest, DropStatements) {
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteSqlpp("DROP DATASET Tweets;").ok());
  EXPECT_FALSE(db.ExecuteSqlpp("SELECT VALUE t FROM Tweets t;").ok());
  EXPECT_FALSE(db.ExecuteSqlpp("DROP DATASET Tweets;").ok());
  EXPECT_TRUE(db.ExecuteSqlpp("DROP DATASET Tweets IF EXISTS;").ok());
  ASSERT_TRUE(db.ExecuteSqlpp("CREATE FUNCTION f(x) { SELECT VALUE x };").ok());
  EXPECT_TRUE(db.ExecuteSqlpp("DROP FUNCTION f;").ok());
}

TEST(InstanceTest, CreateOrReplaceFunctionUpdatesInstantly) {
  // The paper: "a SQL++ UDF can be updated ... instantly" (§3.2).
  Instance db(SmallCluster());
  ASSERT_TRUE(db.ExecuteSqlpp(
                    "CREATE FUNCTION f(x) { LET y = 1 SELECT VALUE y };")
                  .ok());
  auto v1 = db.ExecuteSqlpp("SELECT VALUE f(0)[0];");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)[0].AsInt(), 1);
  EXPECT_FALSE(db.ExecuteSqlpp(
                     "CREATE FUNCTION f(x) { LET y = 2 SELECT VALUE y };")
                   .ok());  // no OR REPLACE
  ASSERT_TRUE(db.ExecuteSqlpp(
                    "CREATE OR REPLACE FUNCTION f(x) { LET y = 2 SELECT VALUE y };")
                  .ok());
  auto v2 = db.ExecuteSqlpp("SELECT VALUE f(0)[0];");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)[0].AsInt(), 2);
}

}  // namespace
}  // namespace idea
