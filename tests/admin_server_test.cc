// Tests for the embedded HTTP admin server: the standalone server (routing,
// error responses, lifecycle) and the Instance-level smoke test that starts a
// cluster with the full telemetry plane enabled and scrapes every endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "adm/json.h"
#include "idea.h"
#include "obs/admin_server.h"
#include "workload/tweets.h"
#include "workload/usecases.h"

namespace idea::obs {
namespace {

// Sends raw bytes to the server and returns everything it answers (headers
// included). Used to exercise the 405/400 paths HttpGet can't produce.
std::string RawRequest(const std::string& host, uint16_t port,
                       const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(AdminServerTest, RoutesHandlersAndReportsErrors) {
  AdminServer server;  // default: 127.0.0.1, ephemeral port
  server.Handle("/ping", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "{\"pong\":true,\"query\":\"" + req.query + "\"}";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  auto body = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  auto parsed = adm::ParseJson(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetField("pong")->AsBool());

  // Query strings are split off the path and passed through.
  body = HttpGet("127.0.0.1", server.port(), "/ping?verbose=1");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("verbose=1"), std::string::npos);

  // Unknown path: 404 with a JSON error body.
  auto missing = HttpGet("127.0.0.1", server.port(), "/nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("404"), std::string::npos);

  // Handlers can be registered while the server is running.
  server.Handle("/late", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "late"};
  });
  auto late = HttpGet("127.0.0.1", server.port(), "/late");
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(*late, "late");

  // Non-GET methods are rejected with 405; garbage with 400.
  std::string post = RawRequest("127.0.0.1", server.port(),
                                "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find(" 405 "), std::string::npos) << post;
  std::string garbage = RawRequest("127.0.0.1", server.port(), "ni!\r\n\r\n");
  EXPECT_NE(garbage.find(" 400 "), std::string::npos) << garbage;

  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(AdminServerTest, StartTwiceAndRestart) {
  AdminServer server;
  server.Handle("/x", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "x"};
  });
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  // A stopped server can be started again (possibly on a new ephemeral port).
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  auto body = HttpGet("127.0.0.1", server.port(), "/x");
  ASSERT_TRUE(body.ok()) << "old port " << port << ": "
                         << body.status().ToString();
  EXPECT_EQ(*body, "x");
  server.Stop();
}

// ISSUE smoke test: a real Instance with the admin server + sampler enabled,
// a feed run through it, and every telemetry endpoint scraped and validated.
TEST(AdminServerTest, InstanceTelemetryPlaneEndToEnd) {
  InstanceOptions opts;
  opts.cluster.nodes = 2;
  opts.cluster.mode = cluster::ExecutionMode::kThreads;
  opts.enable_admin_server = true;
  opts.enable_sampler = true;
  opts.sampler.period_us = 5'000;
  Instance db(opts);
  ASSERT_GT(db.admin_port(), 0);
  const uint16_t port = db.admin_port();

  ASSERT_TRUE(db.ExecuteScript(workload::TweetDdl()).ok());
  ASSERT_TRUE(db.ExecuteScript(R"(
    CREATE FEED TweetFeed WITH { "type-name": "TweetType", "batch-size": "25" };
    CONNECT FEED TweetFeed TO DATASET Tweets;
  )").ok());
  auto records = std::make_shared<std::vector<std::string>>();
  workload::TweetGenerator gen({.seed = 7, .country_domain = 20});
  for (int i = 0; i < 100; ++i) records->push_back(gen.NextJson());
  ASSERT_TRUE(db.SetFeedAdapterFactory("TweetFeed",
                                       feed::MakeVectorAdapterFactory(records))
                  .ok());
  ASSERT_TRUE(db.ExecuteSqlpp("START FEED TweetFeed;").ok());
  auto stats = db.WaitForFeed("TweetFeed");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_ingested, 100u);

  // /healthz
  auto health = HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  auto parsed = adm::ParseJson(*health);
  ASSERT_TRUE(parsed.ok()) << *health;
  EXPECT_EQ(parsed->GetField("status")->AsString(), "ok");

  // /metrics: the standard JSON snapshot, with the feed's counters in it.
  auto metrics = HttpGet("127.0.0.1", port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  parsed = adm::ParseJson(*metrics);
  ASSERT_TRUE(parsed.ok()) << *metrics;
  EXPECT_EQ(parsed->GetField("type")->AsString(), "metrics");
  const adm::Value* counters = parsed->GetField("counters");
  ASSERT_NE(counters, nullptr);
  const adm::Value* ingested =
      counters->GetField("idea.feed.TweetFeed.records_ingested");
  ASSERT_NE(ingested, nullptr) << *metrics;
  EXPECT_EQ(ingested->AsInt(), 100);

  // /metrics.prom: Prometheus text exposition.
  auto prom = HttpGet("127.0.0.1", port, "/metrics.prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("# TYPE idea_feed_TweetFeed_records_ingested counter"),
            std::string::npos)
      << prom->substr(0, 500);
  EXPECT_NE(prom->find("idea_feed_TweetFeed_records_ingested 100"),
            std::string::npos);

  // /traces: Chrome trace_event JSON with at least one complete event.
  auto traces = HttpGet("127.0.0.1", port, "/traces");
  ASSERT_TRUE(traces.ok());
  parsed = adm::ParseJson(*traces);
  ASSERT_TRUE(parsed.ok()) << traces->substr(0, 500);
  const adm::Value* events = parsed->GetField("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->AsArray().size(), 0u);
  EXPECT_EQ(events->AsArray()[0].GetField("ph")->AsString(), "X");

  // /timeseries: sampler output over the same registry.
  auto ts = HttpGet("127.0.0.1", port, "/timeseries");
  ASSERT_TRUE(ts.ok());
  parsed = adm::ParseJson(*ts);
  ASSERT_TRUE(parsed.ok()) << ts->substr(0, 500);
  EXPECT_EQ(parsed->GetField("type")->AsString(), "timeseries");
  ASSERT_NE(db.sampler(), nullptr);
  EXPECT_GE(parsed->GetField("samples")->AsInt(), 0);

  // /feeds: per-feed rollup with ingestion totals and DLQ depth.
  auto feeds = HttpGet("127.0.0.1", port, "/feeds");
  ASSERT_TRUE(feeds.ok());
  parsed = adm::ParseJson(*feeds);
  ASSERT_TRUE(parsed.ok()) << *feeds;
  const adm::Value* feed =
      parsed->GetField("feeds") ? parsed->GetField("feeds")->GetField("TweetFeed")
                                : nullptr;
  ASSERT_NE(feed, nullptr) << *feeds;
  EXPECT_EQ(feed->GetField("dataset")->AsString(), "Tweets");
  EXPECT_EQ(feed->GetField("records_ingested")->AsInt(), 100);
  EXPECT_EQ(feed->GetField("dlq_depth")->AsInt(), 0);

  // /flightrecorder: the ring has the feed's start/stop story.
  auto flight = HttpGet("127.0.0.1", port, "/flightrecorder");
  ASSERT_TRUE(flight.ok());
  parsed = adm::ParseJson(*flight);
  ASSERT_TRUE(parsed.ok()) << flight->substr(0, 500);
  bool saw_start = false, saw_stop = false;
  for (const auto& ev : parsed->GetField("events")->AsArray()) {
    if (ev.GetField("scope")->AsString() != "TweetFeed") continue;
    if (ev.GetField("kind")->AsString() == "feed_start") saw_start = true;
    if (ev.GetField("kind")->AsString() == "feed_stop") saw_stop = true;
  }
  EXPECT_TRUE(saw_start) << *flight;
  EXPECT_TRUE(saw_stop) << *flight;

  // /memgov: per-node memory-governor budgets and admission stats.
  auto memgov = HttpGet("127.0.0.1", port, "/memgov");
  ASSERT_TRUE(memgov.ok());
  parsed = adm::ParseJson(*memgov);
  ASSERT_TRUE(parsed.ok()) << memgov->substr(0, 500);
  const adm::Value* nodes = parsed->GetField("nodes");
  ASSERT_NE(nodes, nullptr) << *memgov;
  ASSERT_GT(nodes->AsArray().size(), 0u);
  EXPECT_GT(nodes->AsArray()[0].GetField("budget_bytes")->AsInt(), 0);
}

}  // namespace
}  // namespace idea::obs
