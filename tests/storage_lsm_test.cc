#include <gtest/gtest.h>

#include <thread>

#include "adm/json.h"
#include "storage/catalog.h"
#include "storage/lsm_dataset.h"

namespace idea::storage {
namespace {

using adm::Value;

adm::Datatype SimpleType() {
  return adm::Datatype("T", {{"id", adm::FieldType::kInt64, false}});
}

Value Rec(int64_t id, const std::string& payload = "p") {
  return Value::MakeObject({{"id", Value::MakeInt(id)},
                            {"payload", Value::MakeString(payload)}});
}

TEST(LsmDatasetTest, InsertGetScan) {
  LsmDataset ds("d", SimpleType(), "id");
  ASSERT_TRUE(ds.Insert(Rec(2)).ok());
  ASSERT_TRUE(ds.Insert(Rec(1)).ok());
  auto got = ds.Get(Value::MakeInt(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetField("payload")->AsString(), "p");
  auto snap = ds.Scan();
  ASSERT_EQ(snap->size(), 2u);
  // Scan is key-ordered.
  EXPECT_EQ((*snap)[0].GetField("id")->AsInt(), 1);
}

TEST(LsmDatasetTest, DuplicateInsertFails) {
  LsmDataset ds("d", SimpleType(), "id");
  ASSERT_TRUE(ds.Insert(Rec(1)).ok());
  EXPECT_EQ(ds.Insert(Rec(1)).code(), StatusCode::kAlreadyExists);
}

TEST(LsmDatasetTest, UpsertReplaces) {
  LsmDataset ds("d", SimpleType(), "id");
  ASSERT_TRUE(ds.Upsert(Rec(1, "old")).ok());
  ASSERT_TRUE(ds.Upsert(Rec(1, "new")).ok());
  EXPECT_EQ(ds.Get(Value::MakeInt(1))->GetField("payload")->AsString(), "new");
  EXPECT_EQ(ds.LiveRecordCount(), 1u);
}

TEST(LsmDatasetTest, DeleteMasksRecord) {
  LsmDataset ds("d", SimpleType(), "id");
  ASSERT_TRUE(ds.Insert(Rec(1)).ok());
  ASSERT_TRUE(ds.Delete(Value::MakeInt(1)).ok());
  EXPECT_TRUE(ds.Get(Value::MakeInt(1)).status().IsNotFound());
  EXPECT_EQ(ds.LiveRecordCount(), 0u);
  EXPECT_TRUE(ds.Delete(Value::MakeInt(1)).IsNotFound());
  // Re-insert after delete works.
  EXPECT_TRUE(ds.Insert(Rec(1)).ok());
}

TEST(LsmDatasetTest, MissingPrimaryKeyRejected) {
  LsmDataset ds("d", SimpleType(), "id");
  Value bad = Value::MakeObject({{"payload", Value::MakeString("x")}});
  EXPECT_FALSE(ds.Upsert(bad).ok());
}

TEST(LsmDatasetTest, DatatypeValidationApplies) {
  LsmDataset ds("d",
                adm::Datatype("T", {{"id", adm::FieldType::kInt64, false},
                                    {"when", adm::FieldType::kDateTime, false}}),
                "id");
  Value rec = Value::MakeObject({{"id", Value::MakeInt(1)},
                                 {"when", Value::MakeString("2019-01-01T00:00:00Z")}});
  ASSERT_TRUE(ds.Insert(rec).ok());
  EXPECT_TRUE(ds.Get(Value::MakeInt(1))->GetField("when")->IsDateTime());
  Value bad = Value::MakeObject({{"id", Value::MakeInt(2)},
                                 {"when", Value::MakeString("garbage")}});
  EXPECT_TRUE(ds.Insert(bad).IsTypeMismatch());
}

TEST(LsmDatasetTest, FlushAndCompaction) {
  DatasetOptions opts;
  opts.memtable_bytes = 2048;  // tiny: force flushes
  opts.compaction_threshold = 3;
  LsmDataset ds("d", SimpleType(), "id", opts);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(ds.Upsert(Rec(i, std::string(32, 'x'))).ok());
  }
  DatasetStats stats = ds.stats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_LE(ds.ComponentCount(), opts.compaction_threshold + 1);
  // All records remain visible through the merged read path.
  EXPECT_EQ(ds.LiveRecordCount(), 500u);
  for (int64_t i = 0; i < 500; i += 97) {
    EXPECT_TRUE(ds.Get(Value::MakeInt(i)).ok()) << i;
  }
}

TEST(LsmDatasetTest, NewestVersionWinsAcrossComponents) {
  DatasetOptions opts;
  opts.memtable_bytes = 1024;
  LsmDataset ds("d", SimpleType(), "id", opts);
  for (int round = 0; round < 5; ++round) {
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(ds.Upsert(Rec(i, "v" + std::to_string(round))).ok());
    }
  }
  EXPECT_EQ(ds.LiveRecordCount(), 50u);
  EXPECT_EQ(ds.Get(Value::MakeInt(7))->GetField("payload")->AsString(), "v4");
}

TEST(LsmDatasetTest, WalRecordsAndFlushes) {
  LsmDataset ds("d", SimpleType(), "id");
  ASSERT_TRUE(ds.Insert(Rec(1)).ok());
  ASSERT_TRUE(ds.Upsert(Rec(1, "u")).ok());
  ASSERT_TRUE(ds.Delete(Value::MakeInt(1)).ok());
  WalStats before = ds.wal_stats();
  EXPECT_EQ(before.appends, 3u);
  EXPECT_GT(before.unflushed_bytes, 0u);
  ASSERT_TRUE(ds.FlushWal().ok());
  WalStats after = ds.wal_stats();
  EXPECT_EQ(after.flushes, 1u);
  EXPECT_EQ(after.unflushed_bytes, 0u);
}

TEST(WalTest, ReadAllRoundTrips) {
  Wal wal;
  WalRecord r1{WalRecordType::kInsert, 1, Value::MakeInt(5), Rec(5)};
  WalRecord r2{WalRecordType::kDelete, 2, Value::MakeInt(5), Value()};
  ASSERT_TRUE(wal.Append(r1).ok());
  ASSERT_TRUE(wal.Append(r2).ok());
  ASSERT_TRUE(wal.Flush().ok());
  auto records = wal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kInsert);
  EXPECT_EQ((*records)[0].record, r1.record);
  EXPECT_EQ((*records)[1].type, WalRecordType::kDelete);
  EXPECT_EQ((*records)[1].key.AsInt(), 5);
}

TEST(WalTest, FileBackedLog) {
  std::string path = ::testing::TempDir() + "/idea_wal_test.log";
  auto wal = Wal::OpenFile(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append({WalRecordType::kUpsert, 1, Value::MakeInt(1), Rec(1)}).ok());
  ASSERT_TRUE((*wal)->Flush().ok());
  EXPECT_EQ((*wal)->stats().flushes, 1u);
}

TEST(LsmDatasetTest, ConcurrentReadersAndWriter) {
  LsmDataset ds("d", SimpleType(), "id");
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(ds.Upsert(Rec(i)).ok());
  std::atomic<uint64_t> reads{0};
  std::thread writer([&] {
    for (int64_t i = 0; i < 1000; ++i) {
      (void)ds.Upsert(Rec(i % 100, "w" + std::to_string(i)));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto snap = ds.Scan();
        EXPECT_EQ(snap->size(), 100u);
        reads.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(CatalogTest, LifecycleAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatatype(SimpleType()).ok());
  EXPECT_TRUE(catalog.CreateDatatype(SimpleType()).code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.CreateDataset("D1", "T", "id").ok());
  EXPECT_TRUE(catalog.CreateDataset("D1", "T", "id").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_FALSE(catalog.CreateDataset("D2", "NoType", "id").ok());
  EXPECT_TRUE(catalog.HasDataset("D1"));
  EXPECT_NE(catalog.FindDataset("D1"), nullptr);
  EXPECT_EQ(catalog.DatasetNames().size(), 1u);
  ASSERT_TRUE(catalog.DropDataset("D1").ok());
  EXPECT_FALSE(catalog.HasDataset("D1"));
  EXPECT_TRUE(catalog.DropDataset("D1").IsNotFound());
}

TEST(CatalogAccessorTest, EpochCaching) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatatype(SimpleType()).ok());
  ASSERT_TRUE(catalog.CreateDataset("D", "T", "id").ok());
  auto ds = catalog.FindDataset("D");
  ASSERT_TRUE(ds->Upsert(Rec(1)).ok());

  CatalogAccessor cached(&catalog, /*cache=*/true);
  auto snap1 = cached.GetSnapshot("D");
  ASSERT_TRUE(snap1.ok());
  EXPECT_EQ((*snap1)->size(), 1u);
  ASSERT_TRUE(ds->Upsert(Rec(2)).ok());
  // Same epoch: cached snapshot, update invisible.
  EXPECT_EQ((*cached.GetSnapshot("D"))->size(), 1u);
  cached.BeginEpoch();
  EXPECT_EQ((*cached.GetSnapshot("D"))->size(), 2u);

  CatalogAccessor uncached(&catalog, /*cache=*/false);
  EXPECT_EQ((*uncached.GetSnapshot("D"))->size(), 2u);
  ASSERT_TRUE(ds->Upsert(Rec(3)).ok());
  EXPECT_EQ((*uncached.GetSnapshot("D"))->size(), 3u);
}

TEST(CatalogAccessorTest, IndexProbeKinds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatatype(SimpleType()).ok());
  ASSERT_TRUE(catalog.CreateDataset("D", "T", "id").ok());
  auto ds = catalog.FindDataset("D");
  ASSERT_TRUE(ds->CreateIndex("i1", "payload", "btree").ok());
  CatalogAccessor accessor(&catalog, false);
  auto probe = accessor.GetIndexProbe("D", "payload");
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->kind(), sqlpp::IndexProbe::Kind::kEquality);
  EXPECT_EQ(accessor.GetIndexProbe("D", "nope"), nullptr);
  EXPECT_EQ(accessor.GetIndexProbe("NoDs", "payload"), nullptr);
}

}  // namespace
}  // namespace idea::storage
