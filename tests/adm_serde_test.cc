#include <gtest/gtest.h>

#include "adm/serde.h"
#include "common/rng.h"

namespace idea::adm {
namespace {

void ExpectRoundTrip(const Value& v) {
  auto bytes = SerializeToBytes(v);
  auto back = DeserializeFromBytes(bytes);
  ASSERT_TRUE(back.ok()) << v.ToString() << ": " << back.status().ToString();
  EXPECT_EQ(*back, v) << v.ToString();
}

TEST(SerdeTest, AllScalarTypes) {
  ExpectRoundTrip(Value::MakeMissing());
  ExpectRoundTrip(Value::MakeNull());
  ExpectRoundTrip(Value::MakeBool(true));
  ExpectRoundTrip(Value::MakeBool(false));
  ExpectRoundTrip(Value::MakeInt(0));
  ExpectRoundTrip(Value::MakeInt(-123456789));
  ExpectRoundTrip(Value::MakeInt(INT64_MAX));
  ExpectRoundTrip(Value::MakeInt(INT64_MIN));
  ExpectRoundTrip(Value::MakeDouble(3.14159));
  ExpectRoundTrip(Value::MakeDouble(-0.0));
  ExpectRoundTrip(Value::MakeString(""));
  ExpectRoundTrip(Value::MakeString(std::string("a\0b", 3)));
  ExpectRoundTrip(Value::MakeDateTime({-9999999}));
  ExpectRoundTrip(Value::MakeDuration({-3, 12345}));
  ExpectRoundTrip(Value::MakePoint({1.25, -2.5}));
  ExpectRoundTrip(Value::MakeRectangle({{0, 0}, {5, 5}}));
  ExpectRoundTrip(Value::MakeCircle({{1, 1}, 2.5}));
}

TEST(SerdeTest, NestedValues) {
  Value v = Value::MakeObject({
      {"arr", Value::MakeArray({Value::MakeInt(1), Value::MakeNull(),
                                Value::MakeArray({Value::MakeString("deep")})})},
      {"obj", Value::MakeObject({{"p", Value::MakePoint({7, 8})}})},
  });
  ExpectRoundTrip(v);
}

TEST(SerdeTest, TruncationIsCorruption) {
  auto bytes = SerializeToBytes(Value::MakeString("hello world"));
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> partial(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    auto r = DeserializeFromBytes(partial);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(SerdeTest, BadTagIsCorruption) {
  std::vector<uint8_t> bytes = {0xFF};
  EXPECT_FALSE(DeserializeFromBytes(bytes).ok());
}

TEST(SerdeTest, TrailingBytesRejected) {
  auto bytes = SerializeToBytes(Value::MakeInt(7));
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeFromBytes(bytes).ok());
}

TEST(SerdeTest, HugeDeclaredArrayLengthRejected) {
  // Tag kArray + varint length far exceeding the remaining bytes must fail
  // cleanly instead of attempting a giant allocation.
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(ValueType::kArray), 0xFF, 0xFF,
                                0xFF, 0x7F};
  EXPECT_FALSE(DeserializeFromBytes(bytes).ok());
}

Value RandomValue(Rng* rng, int depth = 0) {
  if (depth < 3 && rng->NextBool(0.4)) {
    if (rng->NextBool(0.5)) {
      Array arr;
      size_t n = rng->NextBelow(5);
      for (size_t i = 0; i < n; ++i) arr.push_back(RandomValue(rng, depth + 1));
      return Value::MakeArray(std::move(arr));
    }
    Fields fields;
    size_t n = rng->NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      fields.emplace_back("k" + std::to_string(i), RandomValue(rng, depth + 1));
    }
    return Value::MakeObject(std::move(fields));
  }
  switch (rng->NextBelow(10)) {
    case 0:
      return Value::MakeMissing();
    case 1:
      return Value::MakeNull();
    case 2:
      return Value::MakeBool(rng->NextBool(0.5));
    case 3:
      return Value::MakeInt(static_cast<int64_t>(rng->Next()));
    case 4:
      return Value::MakeDouble(rng->NextDouble() * 1e9);
    case 5:
      return Value::MakeString(rng->NextAlpha(rng->NextBelow(20)));
    case 6:
      return Value::MakeDateTime({static_cast<int64_t>(rng->Next() >> 20)});
    case 7:
      return Value::MakePoint({rng->NextDouble(), rng->NextDouble()});
    case 8:
      return Value::MakeRectangle(
          {{rng->NextDouble(), rng->NextDouble()}, {rng->NextDouble(), rng->NextDouble()}});
    default:
      return Value::MakeCircle({{rng->NextDouble(), rng->NextDouble()}, rng->NextDouble()});
  }
}

class SerdeRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeRoundTripProperty, RandomValuesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) ExpectRoundTrip(RandomValue(&rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeRoundTripProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace idea::adm
